package index

import (
	"math"
	"testing"
)

func TestSearchBM25Basic(t *testing.T) {
	ix := buildTestIndex(t)
	hits := ix.SearchBM25("entity resolution", 10, DefaultBM25)
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	top2 := map[int]bool{hits[0].DocID: true, hits[1].DocID: true}
	if !top2[0] || !top2[1] {
		t.Errorf("top hits = %v, want docs 0 and 1", hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted")
		}
	}
	for _, h := range hits {
		if h.Score <= 0 || math.IsNaN(h.Score) {
			t.Errorf("score %v invalid", h.Score)
		}
	}
}

func TestSearchBM25Degenerate(t *testing.T) {
	ix := buildTestIndex(t)
	if got := ix.SearchBM25("entity", 0, DefaultBM25); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := New(nil).SearchBM25("x", 5, DefaultBM25); got != nil {
		t.Error("empty index should return nil")
	}
	if got := ix.SearchBM25("zzzunknown", 5, DefaultBM25); len(got) != 0 {
		t.Errorf("unknown term hits = %v", got)
	}
	// Zero params fall back to defaults.
	hits := ix.SearchBM25("machine learning", 5, BM25Params{})
	if len(hits) == 0 {
		t.Error("zero params should fall back to defaults")
	}
}

func TestBM25TermFrequencySaturation(t *testing.T) {
	// With k1 saturation, 10 occurrences must score less than 10× one
	// occurrence.
	ix := New(nil)
	ix.Add("once", "cheese bread")
	ix.Add("many", "cheese cheese cheese cheese cheese cheese cheese cheese cheese cheese bread")
	ix.Add("none", "water juice")
	hits := ix.SearchBM25("cheese", 3, DefaultBM25)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	var onceScore, manyScore float64
	for _, h := range hits {
		name, _ := ix.Name(h.DocID)
		switch name {
		case "once":
			onceScore = h.Score
		case "many":
			manyScore = h.Score
		}
	}
	if manyScore <= onceScore {
		t.Errorf("more occurrences should score higher: %v <= %v", manyScore, onceScore)
	}
	if manyScore >= 10*onceScore {
		t.Errorf("BM25 should saturate: %v vs %v", manyScore, onceScore)
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	// Same tf, shorter document scores higher with b > 0.
	ix := New(nil)
	ix.Add("short", "cheese bread")
	ix.Add("long", "cheese bread butter water juice apple orange grape melon banana kiwi")
	hits := ix.SearchBM25("cheese", 2, DefaultBM25)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	name0, _ := ix.Name(hits[0].DocID)
	if name0 != "short" {
		t.Errorf("short doc should rank first, got %q", name0)
	}
	// With b = 0 length normalization is off and scores tie.
	flat := ix.SearchBM25("cheese", 2, BM25Params{K1: 1.2, B: 0})
	if math.Abs(flat[0].Score-flat[1].Score) > 1e-12 {
		t.Errorf("b=0 should ignore length: %v vs %v", flat[0].Score, flat[1].Score)
	}
}

func TestBM25RareTermsWinAtEqualTF(t *testing.T) {
	ix := New(nil)
	ix.Add("a", "cheese pickle")
	ix.Add("b", "cheese mustard")
	ix.Add("c", "cheese relish")
	// "pickle" is rarer than "cheese"; a query for both must rank doc a
	// above pure-cheese docs.
	hits := ix.SearchBM25("cheese pickle", 3, DefaultBM25)
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	name, _ := ix.Name(hits[0].DocID)
	if name != "a" {
		t.Errorf("doc with the rare term should win, got %q", name)
	}
}
