package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/ann"
	"repro/internal/faultfs"
)

// annFileMagic heads every persisted ANN index file; the digit is the
// envelope format version. The envelope records which blocking
// configuration the index belongs to; the ann codec inside carries its
// own format version and checksum.
const annFileMagic = "ERANF001"

// defaultMaxANNFiles caps how many ANN blocking configurations keep a
// persisted graph. ANN indexes are keyed by (scheme, key function, graph
// knobs) — as few knobs as the sharded indexes — so the same small cap
// suffices.
const defaultMaxANNFiles = 16

// ANNDir stores one encoded ann.CandidateIndex per ANN blocking
// configuration in the same DIR/indexes directory as the sharded key
// indexes, each in its own .ann file named by a hash of the
// configuration key. Saves are atomic (temp file + rename), the key is
// verified on load, and damage surfaces as the codec's typed errors —
// the damaged file is quarantined (renamed *.corrupt) and the caller
// rebuilds from the corpus, losing only the restart head-start, never
// correctness.
type ANNDir struct {
	dir  string
	fsys faultfs.FS
	logf func(format string, args ...any)
	// MaxFiles bounds the number of .ann files kept; values < 1 select
	// defaultMaxANNFiles.
	MaxFiles int
	// quarantined counts the damaged files LoadANNIndex renamed aside.
	quarantined atomic.Int64
}

// NewANNDir returns an ANN index directory rooted at dir, creating it if
// needed and sweeping temp files orphaned by a crash mid-save.
func NewANNDir(dir string) (*ANNDir, error) {
	return newANNDir(dir, Options{}.withDefaults())
}

func newANNDir(dir string, opts Options) (*ANNDir, error) {
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	sweepOrphans(opts.FS, dir, ".ann-*")
	return &ANNDir{dir: dir, fsys: opts.FS, logf: opts.Log}, nil
}

// path names the ANN index file of one configuration key.
func (d *ANNDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:12])+".ann")
}

// Quarantined reports how many damaged ANN index files this directory
// has renamed aside since it was opened.
func (d *ANNDir) Quarantined() int64 { return d.quarantined.Load() }

// SaveANNIndex atomically writes the index for one configuration key and
// returns the index version the file reflects, so the caller can skip
// future saves while the index is unchanged.
func (d *ANNDir) SaveANNIndex(key string, idx *ann.CandidateIndex) (uint64, error) {
	if len(key) > maxSnapshotKeyBytes {
		return 0, fmt.Errorf("persist: ann index key is %d bytes, cap is %d", len(key), maxSnapshotKeyBytes)
	}
	tmp, err := d.fsys.CreateTemp(d.dir, ".ann-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("persist: creating ann index temp file: %w", err)
	}
	defer d.fsys.Remove(tmp.Name()) // no-op after a successful rename

	var envelope bytes.Buffer
	envelope.WriteString(annFileMagic)
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	envelope.Write(klen[:])
	envelope.WriteString(key)
	if _, err := tmp.Write(envelope.Bytes()); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("persist: writing ann index envelope: %w", err)
	}
	version, err := idx.EncodeTo(tmp)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("persist: syncing ann index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("persist: closing ann index temp file: %w", err)
	}
	if err := d.fsys.Rename(tmp.Name(), d.path(key)); err != nil {
		return 0, fmt.Errorf("persist: publishing ann index: %w", err)
	}
	if err := d.fsys.SyncDir(d.dir); err != nil {
		return 0, fmt.Errorf("persist: syncing directory %s: %w", d.dir, err)
	}
	d.prune()
	return version, nil
}

// prune removes the oldest ANN index files beyond the cap, best effort.
func (d *ANNDir) prune() {
	limit := d.MaxFiles
	if limit < 1 {
		limit = defaultMaxANNFiles
	}
	pruneOldest(d.fsys, filepath.Join(d.dir, "*.ann"), limit)
}

// LoadANNIndex reads the index saved for key and rebuilds it under cfg,
// which must describe the same ANN blocking configuration (the key is
// the caller's encoding of it). A missing file returns (nil, nil): no
// index is not an error. A present-but-damaged file is quarantined
// (renamed *.corrupt) and returns the codec's typed error —
// ann.ErrCodecVersion for version skew, ann.ErrCodecCorrupt for damage —
// so the caller rebuilds either way, knowing the next save starts clean.
func (d *ANNDir) LoadANNIndex(key string, cfg ann.Config) (*ann.CandidateIndex, error) {
	path := d.path(key)
	f, err := d.fsys.OpenFile(path, os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening ann index: %w", err)
	}
	defer f.Close()

	damaged := func(err error) error {
		quarantine(&d.quarantined, d.fsys, d.logf, path, err)
		return err
	}
	header := make([]byte, len(annFileMagic)+4)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, damaged(fmt.Errorf("persist: ann index %s: truncated envelope: %w", path, err))
	}
	if string(header[:len(annFileMagic)]) != annFileMagic {
		return nil, damaged(fmt.Errorf("persist: ann index %s: bad magic %q (foreign file or unsupported envelope version)",
			path, header[:len(annFileMagic)]))
	}
	klen := binary.LittleEndian.Uint32(header[len(annFileMagic):])
	if klen > maxSnapshotKeyBytes {
		return nil, damaged(fmt.Errorf("persist: ann index %s: key length %d is corrupt", path, klen))
	}
	gotKey := make([]byte, klen)
	if _, err := io.ReadFull(f, gotKey); err != nil {
		return nil, damaged(fmt.Errorf("persist: ann index %s: truncated key: %w", path, err))
	}
	if string(gotKey) != key {
		return nil, damaged(fmt.Errorf("persist: ann index %s was saved for configuration %q, not %q",
			path, gotKey, key))
	}
	idx, err := ann.Decode(f, cfg)
	if err != nil {
		return nil, damaged(fmt.Errorf("persist: ann index %s: %w", path, err))
	}
	return idx, nil
}
