package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/blockindex"
)

// idxFileMagic heads every persisted index file; the digit is the envelope
// format version. The envelope records which blocking configuration the
// index belongs to; the blockindex codec inside carries its own format
// version and checksum.
const idxFileMagic = "ERIXF001"

// defaultMaxIndexFiles caps how many blocking configurations keep a
// persisted index. Indexes are keyed by (scheme, key function, shard
// count) only — far fewer knobs than snapshots — so a small cap suffices.
const defaultMaxIndexFiles = 16

// IndexDir stores one encoded blockindex.Index per blocking configuration,
// each in its own file named by a hash of the configuration key. Saves are
// atomic (temp file + rename), the key is verified on load, and damage
// surfaces as the codec's typed errors — the caller rebuilds from the
// corpus, losing only the restart head-start, never correctness.
type IndexDir struct {
	dir string
	// MaxFiles bounds the number of .idx files kept; values < 1 select
	// defaultMaxIndexFiles.
	MaxFiles int
}

// NewIndexDir returns an index directory rooted at dir, creating it if
// needed and sweeping temp files orphaned by a crash mid-save.
func NewIndexDir(dir string) (*IndexDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	if orphans, err := filepath.Glob(filepath.Join(dir, ".idx-*")); err == nil {
		for _, name := range orphans {
			_ = os.Remove(name)
		}
	}
	return &IndexDir{dir: dir}, nil
}

// path names the index file of one configuration key.
func (d *IndexDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:12])+".idx")
}

// SaveIndex atomically writes the index for one blocking-configuration key
// and returns the index version the file reflects, so the caller can skip
// future saves while the index is unchanged.
func (d *IndexDir) SaveIndex(key string, idx *blockindex.Index) (uint64, error) {
	if len(key) > maxSnapshotKeyBytes {
		return 0, fmt.Errorf("persist: index key is %d bytes, cap is %d", len(key), maxSnapshotKeyBytes)
	}
	tmp, err := os.CreateTemp(d.dir, ".idx-*")
	if err != nil {
		return 0, fmt.Errorf("persist: creating index temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	var envelope bytes.Buffer
	envelope.WriteString(idxFileMagic)
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	envelope.Write(klen[:])
	envelope.WriteString(key)
	if _, err := tmp.Write(envelope.Bytes()); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("persist: writing index envelope: %w", err)
	}
	version, err := idx.EncodeTo(tmp)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("persist: syncing index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("persist: closing index temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		return 0, fmt.Errorf("persist: publishing index: %w", err)
	}
	if err := syncDir(d.dir); err != nil {
		return 0, err
	}
	d.prune()
	return version, nil
}

// prune removes the oldest index files beyond the cap, best effort.
func (d *IndexDir) prune() {
	limit := d.MaxFiles
	if limit < 1 {
		limit = defaultMaxIndexFiles
	}
	names, err := filepath.Glob(filepath.Join(d.dir, "*.idx"))
	if err != nil || len(names) <= limit {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	files := make([]aged, 0, len(names))
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue
		}
		files = append(files, aged{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for i := 0; i+limit < len(files); i++ {
		_ = os.Remove(files[i].name)
	}
}

// LoadIndex reads the index saved for key and rebuilds it under cfg, which
// must describe the same blocking configuration (the key is the caller's
// encoding of it). A missing file returns (nil, nil): no index is not an
// error. A present-but-damaged file returns the codec's typed error.
func (d *IndexDir) LoadIndex(key string, cfg blockindex.Config) (*blockindex.Index, error) {
	f, err := os.Open(d.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening index: %w", err)
	}
	defer f.Close()

	header := make([]byte, len(idxFileMagic)+4)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("persist: index %s: truncated envelope: %w", d.path(key), err)
	}
	if string(header[:len(idxFileMagic)]) != idxFileMagic {
		return nil, fmt.Errorf("persist: index %s: bad magic %q (foreign file or unsupported envelope version)",
			d.path(key), header[:len(idxFileMagic)])
	}
	klen := binary.LittleEndian.Uint32(header[len(idxFileMagic):])
	if klen > maxSnapshotKeyBytes {
		return nil, fmt.Errorf("persist: index %s: key length %d is corrupt", d.path(key), klen)
	}
	gotKey := make([]byte, klen)
	if _, err := io.ReadFull(f, gotKey); err != nil {
		return nil, fmt.Errorf("persist: index %s: truncated key: %w", d.path(key), err)
	}
	if string(gotKey) != key {
		return nil, fmt.Errorf("persist: index %s was saved for configuration %q, not %q",
			d.path(key), gotKey, key)
	}
	idx, err := blockindex.Decode(f, cfg)
	if err != nil {
		return nil, fmt.Errorf("persist: index %s: %w", d.path(key), err)
	}
	return idx, nil
}
