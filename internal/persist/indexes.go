package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/blockindex"
	"repro/internal/faultfs"
)

// idxFileMagic heads every persisted index file; the digit is the envelope
// format version. The envelope records which blocking configuration the
// index belongs to; the blockindex codec inside carries its own format
// version and checksum.
const idxFileMagic = "ERIXF001"

// defaultMaxIndexFiles caps how many blocking configurations keep a
// persisted index. Indexes are keyed by (scheme, key function, shard
// count) only — far fewer knobs than snapshots — so a small cap suffices.
const defaultMaxIndexFiles = 16

// IndexDir stores one encoded blockindex.Index per blocking configuration,
// each in its own file named by a hash of the configuration key. Saves are
// atomic (temp file + rename), the key is verified on load, and damage
// surfaces as the codec's typed errors — the damaged file is quarantined
// (renamed *.corrupt) and the caller rebuilds from the corpus, losing only
// the restart head-start, never correctness.
type IndexDir struct {
	dir  string
	fsys faultfs.FS
	logf func(format string, args ...any)
	// MaxFiles bounds the number of .idx files kept; values < 1 select
	// defaultMaxIndexFiles.
	MaxFiles int
	// quarantined counts the damaged files LoadIndex renamed aside.
	quarantined atomic.Int64
}

// NewIndexDir returns an index directory rooted at dir, creating it if
// needed and sweeping temp files orphaned by a crash mid-save.
func NewIndexDir(dir string) (*IndexDir, error) {
	return newIndexDir(dir, Options{}.withDefaults())
}

func newIndexDir(dir string, opts Options) (*IndexDir, error) {
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	sweepOrphans(opts.FS, dir, ".idx-*")
	return &IndexDir{dir: dir, fsys: opts.FS, logf: opts.Log}, nil
}

// path names the index file of one configuration key.
func (d *IndexDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:12])+".idx")
}

// Quarantined reports how many damaged index files this directory has
// renamed aside since it was opened.
func (d *IndexDir) Quarantined() int64 { return d.quarantined.Load() }

// SaveIndex atomically writes the index for one blocking-configuration key
// and returns the index version the file reflects, so the caller can skip
// future saves while the index is unchanged.
func (d *IndexDir) SaveIndex(key string, idx *blockindex.Index) (uint64, error) {
	if len(key) > maxSnapshotKeyBytes {
		return 0, fmt.Errorf("persist: index key is %d bytes, cap is %d", len(key), maxSnapshotKeyBytes)
	}
	tmp, err := d.fsys.CreateTemp(d.dir, ".idx-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("persist: creating index temp file: %w", err)
	}
	defer d.fsys.Remove(tmp.Name()) // no-op after a successful rename

	var envelope bytes.Buffer
	envelope.WriteString(idxFileMagic)
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	envelope.Write(klen[:])
	envelope.WriteString(key)
	if _, err := tmp.Write(envelope.Bytes()); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("persist: writing index envelope: %w", err)
	}
	version, err := idx.EncodeTo(tmp)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("persist: syncing index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("persist: closing index temp file: %w", err)
	}
	if err := d.fsys.Rename(tmp.Name(), d.path(key)); err != nil {
		return 0, fmt.Errorf("persist: publishing index: %w", err)
	}
	if err := d.fsys.SyncDir(d.dir); err != nil {
		return 0, fmt.Errorf("persist: syncing directory %s: %w", d.dir, err)
	}
	d.prune()
	return version, nil
}

// prune removes the oldest index files beyond the cap, best effort.
func (d *IndexDir) prune() {
	limit := d.MaxFiles
	if limit < 1 {
		limit = defaultMaxIndexFiles
	}
	pruneOldest(d.fsys, filepath.Join(d.dir, "*.idx"), limit)
}

// LoadIndex reads the index saved for key and rebuilds it under cfg, which
// must describe the same blocking configuration (the key is the caller's
// encoding of it). A missing file returns (nil, nil): no index is not an
// error. A present-but-damaged file is quarantined (renamed *.corrupt) and
// returns the codec's typed error — blockindex.ErrCodecVersion for version
// skew, blockindex.ErrCodecCorrupt for damage — so the caller rebuilds
// either way, knowing the next save starts clean.
func (d *IndexDir) LoadIndex(key string, cfg blockindex.Config) (*blockindex.Index, error) {
	path := d.path(key)
	f, err := d.fsys.OpenFile(path, os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening index: %w", err)
	}
	defer f.Close()

	damaged := func(err error) error {
		quarantine(&d.quarantined, d.fsys, d.logf, path, err)
		return err
	}
	header := make([]byte, len(idxFileMagic)+4)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, damaged(fmt.Errorf("persist: index %s: truncated envelope: %w", path, err))
	}
	if string(header[:len(idxFileMagic)]) != idxFileMagic {
		return nil, damaged(fmt.Errorf("persist: index %s: bad magic %q (foreign file or unsupported envelope version)",
			path, header[:len(idxFileMagic)]))
	}
	klen := binary.LittleEndian.Uint32(header[len(idxFileMagic):])
	if klen > maxSnapshotKeyBytes {
		return nil, damaged(fmt.Errorf("persist: index %s: key length %d is corrupt", path, klen))
	}
	gotKey := make([]byte, klen)
	if _, err := io.ReadFull(f, gotKey); err != nil {
		return nil, damaged(fmt.Errorf("persist: index %s: truncated key: %w", path, err))
	}
	if string(gotKey) != key {
		return nil, damaged(fmt.Errorf("persist: index %s was saved for configuration %q, not %q",
			path, gotKey, key))
	}
	idx, err := blockindex.Decode(f, cfg)
	if err != nil {
		return nil, damaged(fmt.Errorf("persist: index %s: %w", path, err))
	}
	return idx, nil
}
