package persist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/faultfs"
	"repro/internal/service"
	"repro/internal/store"
)

// quietLog drops recovery chatter; the crash harness triggers hundreds of
// expected recoveries and their logs would bury real failures.
func quietLog(string, ...any) {}

// TestCrashEveryIOBoundary is the crash harness: one ingest lifecycle —
// open, append batches, save a snapshot and an index, close — is first
// probed to count its mutating filesystem operations, then re-run once
// per operation with a crash injected exactly there (clean crash and
// torn-write crash both), the directory reopened with a healthy
// filesystem, and the recovered state checked:
//
//   - every acknowledged batch is present (the fsync-before-ack
//     contract); at most the one in-flight unacknowledged batch may
//     additionally survive (it was fully journaled before the fault),
//   - the snapshot and index files load cleanly or are absent — never
//     garbage, never quarantined (saves are atomic temp+rename),
//   - no *.tmp orphan outlives the reopen sweep.
func TestCrashEveryIOBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("the crash harness replays the scenario once per I/O boundary")
	}
	batches := testBatches(t)

	// Reference stores: memJSON[k] is the canonical byte form of the store
	// after the first k batches.
	memJSON := make([][]byte, len(batches)+1)
	mem := store.NewMemStore()
	memJSON[0], _ = storeJSON(t, mem)
	for k, batch := range batches {
		if _, err := mem.Append(batch); err != nil {
			t.Fatal(err)
		}
		memJSON[k+1], _ = storeJSON(t, mem)
	}

	// One snapshot and one index, prepared once: the harness exercises
	// their I/O, not their construction.
	pl := testPipeline(t)
	run, err := pl.RunIncremental(context.Background(), batches[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	const snapKey = "best|closure|exact|0.1|10|42"
	const idxKey = "token|collection|4"
	idxCfg := blockindex.Config{Scheme: blocking.TokenBlocking{}, Shards: 4}
	idx, err := blockindex.New(idxCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Update(indexCols()); err != nil {
		t.Fatal(err)
	}

	// scenario is the lifecycle under test. It returns how many batches
	// were acknowledged; a crashed run simply stops acknowledging.
	scenario := func(fsys faultfs.FS, dir string) (acked int) {
		data, err := OpenWithOptions(dir, Options{FS: fsys, Log: quietLog})
		if err != nil {
			return 0
		}
		defer data.Close() // after a crash this fails too; a dead process cannot flush
		for _, batch := range batches {
			if _, err := data.Store.Append(batch); err == nil {
				acked++
			}
		}
		_ = data.Snapshots.Save(snapKey, run.Snapshot)
		_, _ = data.Indexes.SaveIndex(idxKey, idx)
		return acked
	}

	// Probe: an unarmed injector counts the boundaries and proves the
	// scenario is clean end to end.
	probe := faultfs.NewInjector(nil)
	if got := scenario(probe, t.TempDir()); got != len(batches) {
		t.Fatalf("probe run acked %d/%d batches", got, len(batches))
	}
	total := probe.Ops()
	if total < 15 {
		t.Fatalf("probe counted %d mutating ops; the scenario lost its I/O coverage", total)
	}

	for _, mode := range []struct {
		name string
		arm  func(*faultfs.Injector, int)
	}{
		{"crash", (*faultfs.Injector).CrashAt},
		{"torn", (*faultfs.Injector).TornCrashAt},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for n := 1; n <= total; n++ {
				dir := t.TempDir()
				in := faultfs.NewInjector(nil)
				mode.arm(in, n)
				acked := scenario(in, dir)
				if !in.Faulted() {
					t.Fatalf("op %d: planned fault never fired (scenario shrank to %d ops?)", n, in.Ops())
				}

				// Restart with a healthy filesystem.
				data, err := OpenWithOptions(dir, Options{Log: quietLog})
				if err != nil {
					t.Fatalf("op %d: reopen after crash failed: %v", n, err)
				}
				gotJSON, _ := storeJSON(t, data.Store)
				ok := bytes.Equal(gotJSON, memJSON[acked])
				if !ok && acked < len(batches) {
					// The in-flight batch was fully journaled before the
					// fault (e.g. the bytes landed, the sync faulted): not
					// acknowledged, but legitimately durable.
					ok = bytes.Equal(gotJSON, memJSON[acked+1])
				}
				if !ok {
					t.Fatalf("op %d: reopened store lost acknowledged data (%d batches acked)", n, acked)
				}

				// Snapshot and index either load cleanly or are absent;
				// atomic publication means a crash can never leave a
				// half-written file under the real name.
				if _, err := data.Snapshots.Load(snapKey, pl); err != nil {
					t.Fatalf("op %d: snapshot load after crash: %v", n, err)
				}
				if _, err := data.Indexes.LoadIndex(idxKey, idxCfg); err != nil {
					t.Fatalf("op %d: index load after crash: %v", n, err)
				}
				if q := data.Snapshots.Quarantined() + data.Indexes.Quarantined(); q != 0 {
					t.Fatalf("op %d: atomic saves still produced %d quarantined files", n, q)
				}
				for _, sub := range []string{"snapshots", "indexes"} {
					orphans, err := filepath.Glob(filepath.Join(dir, sub, "*.tmp"))
					if err != nil {
						t.Fatal(err)
					}
					if len(orphans) != 0 {
						t.Fatalf("op %d: %s kept %d orphaned temp files after reopen", n, sub, len(orphans))
					}
				}
				if err := data.Close(); err != nil {
					t.Fatalf("op %d: closing recovered store: %v", n, err)
				}
			}
		})
	}
}

// TestQuarantineAndRebuild is the degradation acceptance test at the
// service level: a restart finds its persisted snapshot AND blocking
// index corrupted on disk. The resolve must not fail — the damaged files
// are quarantined (*.corrupt) and both artifacts are rebuilt from the
// journaled corpus, with cluster output identical to the pre-damage run,
// and the degradation visible in /v1/stats.
func TestQuarantineAndRebuild(t *testing.T) {
	dir := t.TempDir()
	const knobs = `{"seed": 42, "blocking": "token"}`

	data1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := service.New(service.Config{Store: data1.Store, Snapshots: data1.Snapshots, Indexes: data1.Indexes})
	ts1 := httptest.NewServer(srv1.Handler())
	ingestAll(t, ts1, restartCorpus(t))
	before := postIncremental(t, ts1, knobs)
	ts1.Close()
	// Graceful close so the blocking index is persisted alongside the
	// snapshot; the damage below must find both artifacts on disk.
	if err := srv1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := data1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt every persisted snapshot and index file in place: flip a
	// byte deep inside each — past the envelope, inside the codec's
	// checksummed payload.
	damaged := 0
	for _, pattern := range []string{"snapshots/*.snap", "indexes/*.idx"} {
		files, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range files {
			buf, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)-9] ^= 0x40
			if err := os.WriteFile(name, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			damaged++
		}
	}
	if damaged < 2 {
		t.Fatalf("damaged only %d persisted files; expected at least a snapshot and an index", damaged)
	}

	// Restart onto the damaged directory.
	data2, err := OpenWithOptions(dir, Options{Log: quietLog})
	if err != nil {
		t.Fatal(err)
	}
	defer data2.Close()
	srv2 := service.New(service.Config{
		Store: data2.Store, Snapshots: data2.Snapshots, Indexes: data2.Indexes,
		ErrorLog: quietLog,
	})
	defer srv2.Close(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// The resolve succeeds despite the damage and rebuilds from the
	// journaled corpus: clusters equal the pre-damage run's.
	after := postIncremental(t, ts2, knobs)
	if after.Incremental.ReusedBlocks != 0 {
		t.Errorf("run against quarantined state reused %d blocks; it must rebuild", after.Incremental.ReusedBlocks)
	}
	if len(after.Blocks) != len(before.Blocks) {
		t.Fatalf("block count changed across quarantine: %d vs %d", len(after.Blocks), len(before.Blocks))
	}
	for i := range before.Blocks {
		a, b := before.Blocks[i], after.Blocks[i]
		if a.Name != b.Name || !equalLabels(a.Labels, b.Labels) {
			t.Errorf("block %q: clusters diverged after quarantine-and-rebuild (%v vs %v)", a.Name, a.Labels, b.Labels)
		}
	}

	// The damage is quarantined, not deleted or still in place.
	for _, pattern := range []string{"snapshots/*.corrupt", "indexes/*.corrupt"} {
		files, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("no quarantined files match %s", pattern)
		}
	}
	if got := data2.Snapshots.Quarantined(); got != 1 {
		t.Errorf("snapshot quarantine count = %d, want 1", got)
	}
	if got := data2.Indexes.Quarantined(); got != 1 {
		t.Errorf("index quarantine count = %d, want 1", got)
	}

	// /v1/stats surfaces the degradation.
	var stats struct {
		Degraded struct {
			QuarantinedSnapshots int64 `json:"quarantined_snapshots"`
			QuarantinedIndexes   int64 `json:"quarantined_indexes"`
			SnapshotLoadFailures int64 `json:"snapshot_load_failures"`
			IndexLoadFailures    int64 `json:"index_load_failures"`
		} `json:"degraded"`
	}
	getJSON(t, ts2, "/v1/stats", &stats)
	d := stats.Degraded
	if d.QuarantinedSnapshots != 1 || d.QuarantinedIndexes != 1 {
		t.Errorf("degraded stats = %+v, want one snapshot and one index quarantine", d)
	}
	if d.SnapshotLoadFailures < 1 || d.IndexLoadFailures < 1 {
		t.Errorf("degraded stats = %+v, want the load failures counted", d)
	}

	// The rebuild re-persisted clean state: the next restart loads it and
	// reuses every block again.
	ts2.Close()
	if err := srv2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := data2.Close(); err != nil {
		t.Fatal(err)
	}
	data3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data3.Close()
	srv3 := service.New(service.Config{Store: data3.Store, Snapshots: data3.Snapshots, Indexes: data3.Indexes})
	defer srv3.Close(context.Background())
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	healed := postIncremental(t, ts3, knobs)
	if healed.Incremental.ReusedBlocks != healed.Incremental.Blocks || healed.Incremental.Blocks == 0 {
		t.Errorf("post-rebuild restart stats = %+v, want every block reused", healed.Incremental)
	}
}

// getJSON fetches path from the test server and decodes the JSON reply.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s status = %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
