package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

// seedSegment writes one real ingest batch through a store and returns
// the resulting journal segment's bytes — a well-formed input the fuzzer
// mutates from. The committed corpus under testdata/fuzz holds a copy of
// this segment plus torn and bit-flipped variants.
func seedSegment(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	data, err := OpenWithOptions(dir, Options{Log: quietLog})
	if err != nil {
		tb.Fatal(err)
	}
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "rivera", NumDocs: 4, NumPersonas: 2, Noise: 0.3, Seed: 7,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := data.Store.Append([]*corpus.Collection{col}); err != nil {
		tb.Fatal(err)
	}
	if err := data.Close(); err != nil {
		tb.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if err != nil || len(segs) == 0 {
		tb.Fatalf("no seed segment: %v", err)
	}
	buf, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

// FuzzReplaySegment feeds arbitrary bytes to the journal replay path as
// the store's only segment. Replay must never panic, whatever the bytes;
// when it accepts the segment (possibly after recovering a torn tail),
// the accepted state must be durable: a second open performs no further
// recovery and reproduces the identical store.
func FuzzReplaySegment(f *testing.F) {
	seed := seedSegment(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail: partial final record
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-3] ^= 0x20 // checksum mismatch on the tail
	f.Add(flipped)
	interior := append([]byte(nil), seed...)
	interior[20] ^= 0x20 // interior damage: must hard-fail, not recover
	f.Add(interior)
	f.Add([]byte{})
	f.Add([]byte(segmentMagic))
	f.Add([]byte(segmentMagic + "garbage that is not a framed record"))

	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		segDir := filepath.Join(dir, "segments")
		if err := os.MkdirAll(segDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(segDir, "00000001.seg"), segment, 0o644); err != nil {
			t.Fatal(err)
		}

		data, err := OpenWithOptions(dir, Options{Log: quietLog})
		if err != nil {
			// Rejected: damage beyond the torn-tail rule is a hard fail.
			// The only requirement on this path is not panicking.
			return
		}
		gotJSON, gotVersion := storeJSON(t, data.Store)
		if err := data.Close(); err != nil {
			t.Fatalf("closing accepted store: %v", err)
		}

		// Whatever recovery the first open performed must be durable and
		// idempotent: the second open starts from a clean journal.
		re, err := OpenWithOptions(dir, Options{Log: quietLog})
		if err != nil {
			t.Fatalf("second open after an accepted first open: %v", err)
		}
		defer re.Close()
		if n := re.Store.TornTailRecoveries(); n != 0 {
			t.Fatalf("recovery was not durable: second open recovered %d torn tails", n)
		}
		reJSON, reVersion := storeJSON(t, re.Store)
		if !bytes.Equal(gotJSON, reJSON) || gotVersion != reVersion {
			t.Fatal("accepted store state is not stable across reopen")
		}
	})
}
