package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ann"
	"repro/internal/blockindex"
	"repro/internal/blocking"
)

func annCfg() ann.Config {
	return ann.Config{Scheme: blocking.Canopy{Loose: 0.4, Tight: 0.8}}
}

func TestANNDirRoundTrip(t *testing.T) {
	dir, err := NewANNDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// No index saved yet: (nil, nil).
	idx, err := dir.LoadANNIndex("ann|canopy|collection|12|100|64", annCfg())
	if err != nil || idx != nil {
		t.Fatalf("LoadANNIndex on empty dir = (%v, %v), want (nil, nil)", idx, err)
	}

	built, err := ann.New(annCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Update(indexCols()); err != nil {
		t.Fatal(err)
	}
	version, err := dir.SaveANNIndex("ann|canopy|collection|12|100|64", built)
	if err != nil {
		t.Fatal(err)
	}
	if version != built.Version() {
		t.Fatalf("SaveANNIndex reported version %d, index is at %d", version, built.Version())
	}

	loaded, err := dir.LoadANNIndex("ann|canopy|collection|12|100|64", annCfg())
	if err != nil {
		t.Fatal(err)
	}
	wantRefs, wantFps := built.Membership()
	gotRefs, gotFps := loaded.Membership()
	if !reflect.DeepEqual(gotRefs, wantRefs) || !reflect.DeepEqual(gotFps, wantFps) {
		t.Fatal("loaded ann index reports different membership than the saved one")
	}

	// A different key must not alias the stored file.
	if _, err := dir.LoadANNIndex("ann|snb|collection|12|100|64", annCfg()); err != nil {
		t.Fatalf("foreign key load: %v (want (nil, nil))", err)
	}
}

func TestANNDirRejectsDamage(t *testing.T) {
	tmp := t.TempDir()
	dir, err := NewANNDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	built, err := ann.New(annCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Update(indexCols()); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.SaveANNIndex("k", built); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(tmp, "*.ann"))
	if err != nil || len(files) != 1 {
		t.Fatalf("ann index files: %v, %v", files, err)
	}

	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x10
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.LoadANNIndex("k", annCfg()); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("damaged ann index load error = %v, want corruption", err)
	}
	if dir.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1", dir.Quarantined())
	}
	if _, err := dir.LoadANNIndex("k", annCfg()); err != nil {
		t.Fatalf("load after quarantine = %v, want (nil, nil)", err)
	}

	// The sharded .idx files and the .ann files share DIR/indexes without
	// aliasing: an IndexDir over the same tree sees no index for the key.
	idxDir, err := NewIndexDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if idx, err := idxDir.LoadIndex("k", blockindex.Config{Scheme: blocking.ExactKey{}, Shards: 2}); err != nil || idx != nil {
		t.Fatalf("IndexDir over shared tree = (%v, %v), want (nil, nil)", idx, err)
	}
}
