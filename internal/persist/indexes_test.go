package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
)

func indexCols() []*corpus.Collection {
	return []*corpus.Collection{
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://a/0", Text: "one", PersonaID: 0},
			{ID: 1, URL: "http://a/1", Text: "two", PersonaID: 0},
		}},
		{Name: "j smith", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://b/0", Text: "three", PersonaID: 0},
		}},
	}
}

func TestIndexDirRoundTrip(t *testing.T) {
	dir, err := NewIndexDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := blockindex.Config{Scheme: blocking.TokenBlocking{}, Shards: 4}

	// No index saved yet: (nil, nil).
	idx, err := dir.LoadIndex("token|collection|4", cfg)
	if err != nil || idx != nil {
		t.Fatalf("LoadIndex on empty dir = (%v, %v), want (nil, nil)", idx, err)
	}

	built, err := blockindex.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Update(indexCols()); err != nil {
		t.Fatal(err)
	}
	version, err := dir.SaveIndex("token|collection|4", built)
	if err != nil {
		t.Fatal(err)
	}
	if version != built.Version() {
		t.Fatalf("SaveIndex reported version %d, index is at %d", version, built.Version())
	}

	loaded, err := dir.LoadIndex("token|collection|4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRefs, wantFps := built.Membership()
	gotRefs, gotFps := loaded.Membership()
	if !reflect.DeepEqual(gotRefs, wantRefs) || !reflect.DeepEqual(gotFps, wantFps) {
		t.Fatal("loaded index reports different membership than the saved one")
	}

	// A different key must not alias the stored file.
	if _, err := dir.LoadIndex("exact|collection|4", cfg); err != nil {
		t.Fatalf("foreign key load: %v (want (nil, nil))", err)
	}
}

func TestIndexDirRejectsDamage(t *testing.T) {
	tmp := t.TempDir()
	dir, err := NewIndexDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := blockindex.Config{Scheme: blocking.ExactKey{}, Shards: 2}
	built, err := blockindex.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Update(indexCols()); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.SaveIndex("k", built); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(tmp, "*.idx"))
	if err != nil || len(files) != 1 {
		t.Fatalf("index files: %v, %v", files, err)
	}

	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x10
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.LoadIndex("k", cfg); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("damaged index load error = %v, want corruption", err)
	}
}
