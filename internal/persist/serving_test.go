package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/blockindex"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/serving"
)

// servingFixture builds a two-cluster serving index over one collection.
func servingFixture(t *testing.T, epoch, version uint64, knobs string) *serving.Index {
	t.Helper()
	cols := []*corpus.Collection{
		{Name: "smith", NumPersonas: 2, Docs: []corpus.Document{
			{ID: 0, URL: "http://a/0", Text: "one", PersonaID: 0},
			{ID: 1, URL: "http://a/1", Text: "two", PersonaID: 0},
			{ID: 2, URL: "http://a/2", Text: "three", PersonaID: 1},
		}},
	}
	blocks := []serving.BlockResolution{{
		Fingerprint: 0xFEED,
		Name:        "smith",
		Members: []blockindex.DocRef{
			{Col: 0, Doc: 0}, {Col: 0, Doc: 1}, {Col: 0, Doc: 2},
		},
		Resolution: &core.Resolution{Labels: []int{0, 0, 1}, Source: "test"},
	}}
	x := serving.Build(nil, epoch, version, knobs, cols, blocks)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	return x
}

func TestServingDirRoundTrip(t *testing.T) {
	dir, err := NewServingDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Nothing saved: both load paths answer (nil, nil).
	if x, err := dir.LoadServing("knobs-a"); err != nil || x != nil {
		t.Fatalf("LoadServing on empty dir = (%v, %v), want (nil, nil)", x, err)
	}
	if x, err := dir.LoadLatestServing(); err != nil || x != nil {
		t.Fatalf("LoadLatestServing on empty dir = (%v, %v), want (nil, nil)", x, err)
	}

	saved := servingFixture(t, 3, 7, "knobs-a")
	if err := dir.SaveServing("knobs-a", saved); err != nil {
		t.Fatal(err)
	}
	got, err := dir.LoadServing("knobs-a")
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 3 || got.StoreVersion() != 7 || got.Knobs() != "knobs-a" {
		t.Fatalf("reloaded index = epoch %d version %d knobs %q", got.Epoch(), got.StoreVersion(), got.Knobs())
	}
	if got.Clusters() != saved.Clusters() || got.Docs() != saved.Docs() {
		t.Fatalf("shape changed: %d/%d clusters, %d/%d docs",
			got.Clusters(), saved.Clusters(), got.Docs(), saved.Docs())
	}
	c := got.DocEntity("smith", 1)
	if c == nil || len(c.Members) != 2 {
		t.Fatalf("DocEntity after reload = %+v", c)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}

	// A different key loads nothing — files are per configuration.
	if x, err := dir.LoadServing("knobs-b"); err != nil || x != nil {
		t.Fatalf("LoadServing with other key = (%v, %v), want (nil, nil)", x, err)
	}
}

func TestServingDirLatestWinsAndSkipsDamage(t *testing.T) {
	tmp := t.TempDir()
	dir, err := NewServingDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.SaveServing("old", servingFixture(t, 1, 1, "old")); err != nil {
		t.Fatal(err)
	}
	if err := dir.SaveServing("new", servingFixture(t, 2, 2, "new")); err != nil {
		t.Fatal(err)
	}
	// Make the mtime ordering unambiguous on coarse-grained filesystems.
	past := time.Now().Add(-time.Hour)
	sum := dir.path("old")
	if err := os.Chtimes(sum, past, past); err != nil {
		t.Fatal(err)
	}

	got, err := dir.LoadLatestServing()
	if err != nil {
		t.Fatal(err)
	}
	if got.Knobs() != "new" {
		t.Fatalf("latest = %q, want the most recently saved", got.Knobs())
	}

	// Corrupt the newest file: LoadLatestServing quarantines it and falls
	// back to the older one.
	newPath := dir.path("new")
	body, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)-5] ^= 0xFF
	if err := os.WriteFile(newPath, body, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = dir.LoadLatestServing()
	if err != nil {
		t.Fatal(err)
	}
	if got.Knobs() != "old" {
		t.Fatalf("after damage, latest = %q, want the surviving older file", got.Knobs())
	}
	if dir.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1", dir.Quarantined())
	}
	matches, err := filepath.Glob(filepath.Join(tmp, "*.corrupt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("corrupt files = %v (%v), want exactly one", matches, err)
	}
}

func TestServingDirRejectsDamage(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string)
		want   error
	}{
		{"bit flip in payload", func(t *testing.T, path string) {
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			body[len(body)-6] ^= 0x01
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
		}, serving.ErrCodecCorrupt},
		{"truncated tail", func(t *testing.T, path string) {
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, body[:len(body)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}, serving.ErrCodecCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, err := NewServingDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := dir.SaveServing("k", servingFixture(t, 1, 1, "k")); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, dir.path("k"))
			if _, err := dir.LoadServing("k"); !errors.Is(err, tc.want) {
				t.Fatalf("LoadServing after %s = %v, want %v", tc.name, err, tc.want)
			}
			if dir.Quarantined() != 1 {
				t.Fatalf("quarantined = %d, want 1", dir.Quarantined())
			}
			// The damaged file was renamed aside, so the next load is a
			// clean miss and the next save starts fresh.
			if x, err := dir.LoadServing("k"); err != nil || x != nil {
				t.Fatalf("post-quarantine load = (%v, %v), want (nil, nil)", x, err)
			}
		})
	}

	// A key mismatch (hash collision or renamed file) is damage too.
	dir, err := NewServingDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.SaveServing("real", servingFixture(t, 1, 1, "real")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(dir.path("real"), dir.path("imposter")); err != nil {
		t.Fatal(err)
	}
	_, err = dir.LoadServing("imposter")
	if err == nil || !strings.Contains(err.Error(), "was saved for configuration") {
		t.Fatalf("key-mismatch load = %v, want a key mismatch error", err)
	}
}
