package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/service"
	"repro/internal/store"
)

// restartCorpus mirrors the pipeline equivalence harness's corpus: three
// person-name collections with different sizes and persona structure.
func restartCorpus(t *testing.T) []*corpus.Collection {
	t.Helper()
	cfgs := []corpus.CollectionConfig{
		{Name: "rivera", NumDocs: 16, NumPersonas: 3, Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: 21},
		{Name: "cohen", NumDocs: 12, NumPersonas: 2, Noise: 0.3, MissingInfo: 0.3, Spurious: 0.1, Seed: 33},
		{Name: "smith", NumDocs: 14, NumPersonas: 4, Noise: 0.5, MissingInfo: 0.1, Spurious: 0.3, Seed: 45},
	}
	cols := make([]*corpus.Collection, len(cfgs))
	for i, cfg := range cfgs {
		col, err := corpus.GenerateCollection(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = col
	}
	return cols
}

// ingestAll pushes the collections through the async ingest API in two
// batches and waits for the jobs to finish, so the journal is exercised
// through the real write path.
func ingestAll(t *testing.T, ts *httptest.Server, cols []*corpus.Collection) {
	t.Helper()
	for _, half := range []func(d []corpus.Document) []corpus.Document{
		func(d []corpus.Document) []corpus.Document { return d[:len(d)/2] },
		func(d []corpus.Document) []corpus.Document { return d[len(d)/2:] },
	} {
		batch := make([]*corpus.Collection, len(cols))
		for i, col := range cols {
			batch[i] = &corpus.Collection{Name: col.Name, Docs: half(col.Docs), NumPersonas: col.NumPersonas}
		}
		body, err := json.Marshal(map[string]any{"collections": batch})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/collections", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ack struct {
			JobID string `json:"job_id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status = %d", resp.StatusCode)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			jr, err := http.Get(ts.URL + "/v1/jobs/" + ack.JobID)
			if err != nil {
				t.Fatal(err)
			}
			var job store.Job
			if err := json.NewDecoder(jr.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			jr.Body.Close()
			if job.Status == store.JobDone {
				break
			}
			if job.Status == store.JobFailed || job.Status == store.JobCanceled {
				t.Fatalf("ingest job %s: %s (%s)", ack.JobID, job.Status, job.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("ingest job %s stuck in %s", ack.JobID, job.Status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

type incResponse struct {
	StoreVersion uint64 `json:"store_version"`
	Docs         int    `json:"docs"`
	Blocks       []struct {
		Name   string `json:"name"`
		Labels []int  `json:"labels"`
	} `json:"blocks"`
	Incremental struct {
		Blocks         int `json:"blocks"`
		ReusedBlocks   int `json:"reused_blocks"`
		PreparedBlocks int `json:"prepared_blocks"`
		TrivialBlocks  int `json:"trivial_blocks"`
	} `json:"incremental"`
}

func postIncremental(t *testing.T, ts *httptest.Server, body string) incResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/resolve/incremental", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("incremental status = %d for body %s", resp.StatusCode, body)
	}
	var out incResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestKillAndRestartEqualsFull is the kill-and-restart acceptance test:
// a server with a -data directory ingests a corpus and resolves it under
// every blocking scheme × strategy × clustering combination (the grid
// TestIncrementalEqualsFull pins in-process); the process then "dies"
// (the server is abandoned mid-flight — every durable write was already
// fsynced at operation time, exactly the crash contract) and a new
// server reopens the directory. After the restart:
//
//   - the reopened store snapshot is byte-identical to the pre-kill one,
//   - the first incremental run of every configuration reuses every
//     block (reused_blocks == blocks), and
//   - its clusters equal a fresh full resolution of the reopened store.
func TestKillAndRestartEqualsFull(t *testing.T) {
	schemes := []string{"exact", "token", "sortedneighborhood", "canopy"}
	strategies := []string{"best", "threshold", "weighted", "majority"}
	clusterings := []string{"closure", "correlation"}
	if testing.Short() {
		schemes = []string{"exact", "sortedneighborhood"}
		strategies = []string{"best", "weighted"}
		clusterings = []string{"closure"}
	}
	knobs := func(scheme, strategy, clustering string) string {
		return fmt.Sprintf(`{"seed": 42, "blocking": %q, "strategy": %q, "clustering": %q}`,
			scheme, strategy, clustering)
	}

	dir := t.TempDir()
	data1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := service.New(service.Config{Store: data1.Store, Snapshots: data1.Snapshots})
	ts1 := httptest.NewServer(srv1.Handler())

	ingestAll(t, ts1, restartCorpus(t))
	before := make(map[string]incResponse)
	for _, scheme := range schemes {
		for _, strategy := range strategies {
			for _, clustering := range clusterings {
				key := scheme + "/" + strategy + "/" + clustering
				before[key] = postIncremental(t, ts1, knobs(scheme, strategy, clustering))
				if got := before[key].Incremental; got.ReusedBlocks != 0 {
					t.Fatalf("%s: first-ever run reused %d blocks", key, got.ReusedBlocks)
				}
			}
		}
	}
	preKillJSON, preKillVersion := storeJSON(t, data1.Store)

	// Kill: abandon the server without any graceful flush. Only the file
	// handle is closed (a dead process frees its descriptors too); every
	// journal record and snapshot was synced when it was written.
	ts1.Close()
	if err := data1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart.
	data2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data2.Close()
	srv2 := service.New(service.Config{Store: data2.Store, Snapshots: data2.Snapshots})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	gotJSON, gotVersion := storeJSON(t, data2.Store)
	if !bytes.Equal(gotJSON, preKillJSON) {
		t.Fatal("reopened store snapshot is not byte-identical to the pre-kill one")
	}
	if gotVersion != preKillVersion {
		t.Fatalf("reopened store version %d, want %d", gotVersion, preKillVersion)
	}

	for _, scheme := range schemes {
		for _, strategy := range strategies {
			for _, clustering := range clusterings {
				key := scheme + "/" + strategy + "/" + clustering
				t.Run(key, func(t *testing.T) {
					body := knobs(scheme, strategy, clustering)
					reused := postIncremental(t, ts2, body)
					if reused.Incremental.ReusedBlocks != reused.Incremental.Blocks ||
						reused.Incremental.PreparedBlocks != 0 || reused.Incremental.Blocks == 0 {
						t.Errorf("post-restart stats = %+v, want every block reused", reused.Incremental)
					}
					prev := before[key]
					if len(reused.Blocks) != len(prev.Blocks) {
						t.Fatalf("block count changed across restart: %d vs %d", len(reused.Blocks), len(prev.Blocks))
					}
					for i := range prev.Blocks {
						a, b := prev.Blocks[i], reused.Blocks[i]
						if a.Name != b.Name || !equalLabels(a.Labels, b.Labels) {
							t.Errorf("block %q: clusters changed across restart (%v vs %v)", a.Name, a.Labels, b.Labels)
						}
					}

					// Persisted-incremental equals a fresh full resolution
					// of the reopened store.
					full := postIncremental(t, ts2, strings.TrimSuffix(body, "}")+`, "fresh": true}`)
					if full.Incremental.ReusedBlocks != 0 {
						t.Errorf("fresh run reused %d blocks", full.Incremental.ReusedBlocks)
					}
					for i := range full.Blocks {
						a, b := reused.Blocks[i], full.Blocks[i]
						if a.Name != b.Name || !equalLabels(a.Labels, b.Labels) {
							t.Errorf("block %q: persisted-incremental clusters %v != full clusters %v",
								a.Name, a.Labels, b.Labels)
						}
					}
				})
			}
		}
	}
}

func equalLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
