package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/internal/serving"
)

// srvFileMagic heads every persisted serving-index file; the digit is the
// envelope format version. The envelope records which resolution
// configuration the serving index belongs to; the serving codec inside
// carries its own format version and checksum.
const srvFileMagic = "ERSVF001"

// defaultMaxServingFiles caps how many resolution configurations keep a
// persisted serving index — one per knobs key, like snapshots.
const defaultMaxServingFiles = 32

// ServingDir stores one encoded serving.Index per resolution configuration,
// each in its own file named by a hash of the configuration key. Saves are
// atomic (temp file + rename), the key is verified on load, and damage
// surfaces as the codec's typed errors — the damaged file is quarantined
// (renamed *.corrupt) and the caller rebuilds on the next committed
// resolve, losing only the restart head-start, never correctness.
type ServingDir struct {
	dir  string
	fsys faultfs.FS
	logf func(format string, args ...any)
	// MaxFiles bounds the number of .srv files kept; values < 1 select
	// defaultMaxServingFiles.
	MaxFiles int
	// quarantined counts the damaged files LoadServing renamed aside.
	quarantined atomic.Int64
}

// NewServingDir returns a serving-index directory rooted at dir, creating
// it if needed and sweeping temp files orphaned by a crash mid-save.
func NewServingDir(dir string) (*ServingDir, error) {
	return newServingDir(dir, Options{}.withDefaults())
}

func newServingDir(dir string, opts Options) (*ServingDir, error) {
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	sweepOrphans(opts.FS, dir, ".srv-*")
	return &ServingDir{dir: dir, fsys: opts.FS, logf: opts.Log}, nil
}

// path names the serving-index file of one configuration key.
func (d *ServingDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:12])+".srv")
}

// Quarantined reports how many damaged serving-index files this directory
// has renamed aside since it was opened.
func (d *ServingDir) Quarantined() int64 { return d.quarantined.Load() }

// SaveServing atomically writes the serving index for one
// resolution-configuration key.
func (d *ServingDir) SaveServing(key string, x *serving.Index) error {
	if len(key) > maxSnapshotKeyBytes {
		return fmt.Errorf("persist: serving key is %d bytes, cap is %d", len(key), maxSnapshotKeyBytes)
	}
	tmp, err := d.fsys.CreateTemp(d.dir, ".srv-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: creating serving temp file: %w", err)
	}
	defer d.fsys.Remove(tmp.Name()) // no-op after a successful rename

	var envelope bytes.Buffer
	envelope.WriteString(srvFileMagic)
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	envelope.Write(klen[:])
	envelope.WriteString(key)
	if _, err := tmp.Write(envelope.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing serving envelope: %w", err)
	}
	if err := x.EncodeTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing serving index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing serving temp file: %w", err)
	}
	if err := d.fsys.Rename(tmp.Name(), d.path(key)); err != nil {
		return fmt.Errorf("persist: publishing serving index: %w", err)
	}
	if err := d.fsys.SyncDir(d.dir); err != nil {
		return fmt.Errorf("persist: syncing directory %s: %w", d.dir, err)
	}
	d.prune()
	return nil
}

// prune removes the oldest serving files beyond the cap, best effort.
func (d *ServingDir) prune() {
	limit := d.MaxFiles
	if limit < 1 {
		limit = defaultMaxServingFiles
	}
	pruneOldest(d.fsys, filepath.Join(d.dir, "*.srv"), limit)
}

// LoadServing reads the serving index saved for key. A missing file returns
// (nil, nil): no serving snapshot is not an error. A present-but-damaged
// file is quarantined (renamed *.corrupt) and returns the codec's typed
// error — serving.ErrCodecVersion for version skew, serving.ErrCodecCorrupt
// for damage — so the caller rebuilds on the next commit, knowing the next
// save starts clean.
func (d *ServingDir) LoadServing(key string) (*serving.Index, error) {
	return d.loadFile(d.path(key), key)
}

// LoadLatestServing returns the most recently saved serving index across
// all configuration keys — what a restarted server publishes as its hot
// index before any resolve has run ("the last committed resolution wins").
// Damaged files are quarantined and the next-newest tried, so one bad file
// costs only its own snapshot. (nil, nil) when nothing usable is stored;
// the first load error when nothing loads but something was damaged.
func (d *ServingDir) LoadLatestServing() (*serving.Index, error) {
	names, err := d.fsys.Glob(filepath.Join(d.dir, "*.srv"))
	if err != nil {
		return nil, fmt.Errorf("persist: listing serving indexes: %w", err)
	}
	type aged struct {
		name string
		mod  int64
	}
	files := make([]aged, 0, len(names))
	for _, name := range names {
		info, err := d.fsys.Stat(name)
		if err != nil {
			continue // raced with prune/quarantine
		}
		files = append(files, aged{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod > files[j].mod })
	var firstErr error
	for _, f := range files {
		x, err := d.loadFile(f.name, "")
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if x != nil {
			return x, nil
		}
	}
	return nil, firstErr
}

// loadFile reads one serving-index file; wantKey == "" skips the envelope
// key check (the latest-file path, where any configuration's index is
// acceptable). Missing files return (nil, nil); damaged files are
// quarantined and return their error.
func (d *ServingDir) loadFile(path, wantKey string) (*serving.Index, error) {
	f, err := d.fsys.OpenFile(path, os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening serving index: %w", err)
	}
	defer f.Close()

	damaged := func(err error) error {
		quarantine(&d.quarantined, d.fsys, d.logf, path, err)
		return err
	}
	header := make([]byte, len(srvFileMagic)+4)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, damaged(fmt.Errorf("persist: serving index %s: truncated envelope: %w", path, err))
	}
	if string(header[:len(srvFileMagic)]) != srvFileMagic {
		return nil, damaged(fmt.Errorf("persist: serving index %s: bad magic %q (foreign file or unsupported envelope version)",
			path, header[:len(srvFileMagic)]))
	}
	klen := binary.LittleEndian.Uint32(header[len(srvFileMagic):])
	if klen > maxSnapshotKeyBytes {
		return nil, damaged(fmt.Errorf("persist: serving index %s: key length %d is corrupt", path, klen))
	}
	gotKey := make([]byte, klen)
	if _, err := io.ReadFull(f, gotKey); err != nil {
		return nil, damaged(fmt.Errorf("persist: serving index %s: truncated key: %w", path, err))
	}
	if wantKey != "" && string(gotKey) != wantKey {
		return nil, damaged(fmt.Errorf("persist: serving index %s was saved for configuration %q, not %q",
			path, gotKey, wantKey))
	}
	x, err := serving.Decode(f)
	if err != nil {
		return nil, damaged(fmt.Errorf("persist: serving index %s: %w", path, err))
	}
	return x, nil
}
