package persist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// testBatches builds three append-only ingest batches over two growing
// collections.
func testBatches(t *testing.T) [][]*corpus.Collection {
	t.Helper()
	cfgs := []corpus.CollectionConfig{
		{Name: "rivera", NumDocs: 12, NumPersonas: 3, Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: 21},
		{Name: "cohen", NumDocs: 9, NumPersonas: 2, Noise: 0.3, MissingInfo: 0.3, Spurious: 0.1, Seed: 33},
	}
	var cols []*corpus.Collection
	for _, cfg := range cfgs {
		col, err := corpus.GenerateCollection(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, col)
	}
	var batches [][]*corpus.Collection
	const n = 3
	for k := 0; k < n; k++ {
		var batch []*corpus.Collection
		for _, col := range cols {
			lo, hi := len(col.Docs)*k/n, len(col.Docs)*(k+1)/n
			batch = append(batch, &corpus.Collection{
				Name:        col.Name,
				Docs:        append([]corpus.Document(nil), col.Docs[lo:hi]...),
				NumPersonas: col.NumPersonas,
			})
		}
		batches = append(batches, batch)
	}
	return batches
}

// storeJSON is the canonical byte form of a store's contents used for
// byte-identical comparisons.
func storeJSON(t *testing.T, s store.DocumentStore) ([]byte, uint64) {
	t.Helper()
	cols, version := s.Snapshot()
	buf, err := json.Marshal(cols)
	if err != nil {
		t.Fatal(err)
	}
	return buf, version
}

// TestStoreReplayByteIdentical pins the durability contract: a store
// reopened from its segment log is byte-identical — same collections,
// same document positions, same persona remapping, same version — to the
// store that wrote it, and to a pure in-memory store fed the same
// batches.
func TestStoreReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemStore()
	for _, batch := range testBatches(t) {
		if _, err := data.Store.Append(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	wantJSON, wantVersion := storeJSON(t, data.Store)
	memJSON, memVersion := storeJSON(t, mem)
	if !bytes.Equal(wantJSON, memJSON) || wantVersion != memVersion {
		t.Fatal("disk-backed store diverged from the in-memory reference while live")
	}
	if err := data.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	gotJSON, gotVersion := storeJSON(t, reopened.Store)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("reopened store snapshot is not byte-identical to the pre-close one")
	}
	if gotVersion != wantVersion {
		t.Errorf("reopened store version %d, want %d", gotVersion, wantVersion)
	}

	// And the reopened store must still honor the append-only contract:
	// appending more documents keeps existing positions.
	extra := []*corpus.Collection{{Name: "rivera", Docs: []corpus.Document{
		{URL: "http://late.example/x", Text: "a late arrival", PersonaID: 0},
	}, NumPersonas: 1}}
	if _, err := reopened.Store.Append(extra); err != nil {
		t.Fatal(err)
	}
	grown, _ := reopened.Store.Snapshot()
	var prior []*corpus.Collection
	if err := json.Unmarshal(wantJSON, &prior); err != nil {
		t.Fatal(err)
	}
	for i, col := range prior {
		if !reflect.DeepEqual(grown[i].Docs[:len(col.Docs)], col.Docs) {
			t.Errorf("collection %q: existing documents moved after a post-reopen append", col.Name)
		}
	}
}

// TestStoreSegmentRotation forces rotation with a tiny segment cap and
// checks replay walks every segment in order.
func TestStoreSegmentRotation(t *testing.T) {
	old := maxSegmentBytes
	maxSegmentBytes = 256
	defer func() { maxSegmentBytes = old }()

	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemStore()
	for _, batch := range testBatches(t) {
		if _, err := data.Store.Append(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := data.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	gotJSON, gotVersion := storeJSON(t, reopened.Store)
	wantJSON, wantVersion := storeJSON(t, mem)
	if !bytes.Equal(gotJSON, wantJSON) || gotVersion != wantVersion {
		t.Error("multi-segment replay diverged from the in-memory reference")
	}
}

// corruptTail opens the newest segment and applies mutate to its bytes.
func corruptNewestSegment(t *testing.T, dir string, mutate func([]byte) []byte) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to corrupt: %v", err)
	}
	path := segs[len(segs)-1]
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(buf), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsDamagedSegments pins the hard-fail paths: interior
// corruption (damage not confined to the newest segment's tail) and a
// foreign/mis-versioned header must fail Open with a clear error instead
// of replaying damaged state. Tail damage on the newest segment is the
// torn-write recovery case, tested in TestOpenRecoversTornTail.
func TestOpenRejectsDamagedSegments(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
		// interior adds a newer header-only segment after the damage, so
		// the damaged file is not the final one (short final files are
		// the aborted-rotation recovery case, tested separately).
		interior bool
	}{
		{"truncated record on interior segment", func(b []byte) []byte { return b[:len(b)-7] }, "runs past end of file", true},
		{"checksum mismatch on interior segment", func(b []byte) []byte { b[len(b)-3] ^= 0x20; return b }, "checksum", true},
		// Damage inside the first record of the newest segment: the bad
		// record does not reach EOF, so this is interior corruption even
		// though the file is the newest — truncating would discard the
		// acknowledged records behind it.
		{"checksum mismatch before the tail", func(b []byte) []byte { b[20] ^= 0x20; return b }, "checksum", false},
		{"foreign header", func(b []byte) []byte { copy(b, "NOTSEG00"); return b }, "bad magic", false},
		{"future segment version", func(b []byte) []byte { copy(b, "ERSEG002"); return b }, "bad magic", false},
		{"truncated header on interior segment", func(b []byte) []byte { return b[:4] }, "truncated header", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			data, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range testBatches(t) {
				if _, err := data.Store.Append(batch); err != nil {
					t.Fatal(err)
				}
			}
			if err := data.Close(); err != nil {
				t.Fatal(err)
			}
			corruptNewestSegment(t, dir, tc.mutate)
			if tc.interior {
				if err := os.WriteFile(filepath.Join(dir, "segments", "99999999.seg"),
					[]byte(segmentMagic), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Open err = %v, want mention of %q", err, tc.wantSub)
			}
		})
	}
}

// TestOpenRecoversTornTail pins the torn-write recovery rule: damage
// confined to the final record of the newest segment — the bytes of a
// write that was never acknowledged — is healed by truncating to the
// last good offset, and the store continues from the surviving records.
func TestOpenRecoversTornTail(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		// A write cut off mid-record: the final frame or payload simply
		// stops short of the declared length.
		{"partial final record", func(b []byte) []byte { return b[:len(b)-7] }},
		// A write that landed all its bytes but scrambled: the final
		// record ends exactly at EOF with a failing checksum.
		{"scrambled final record", func(b []byte) []byte { b[len(b)-3] ^= 0x20; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			data, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			batches := testBatches(t)
			mem := store.NewMemStore()
			for _, batch := range batches {
				if _, err := data.Store.Append(batch); err != nil {
					t.Fatal(err)
				}
			}
			// The reference store holds every batch except the last — the
			// one whose record the "crash" tore.
			for _, batch := range batches[:len(batches)-1] {
				if _, err := mem.Append(batch); err != nil {
					t.Fatal(err)
				}
			}
			if err := data.Close(); err != nil {
				t.Fatal(err)
			}
			corruptNewestSegment(t, dir, tc.mutate)

			reopened, err := Open(dir)
			if err != nil {
				t.Fatalf("Open after tail damage = %v, want torn-tail recovery", err)
			}
			if got := reopened.Store.TornTailRecoveries(); got != 1 {
				t.Errorf("TornTailRecoveries = %d, want 1", got)
			}
			gotJSON, gotVersion := storeJSON(t, reopened.Store)
			wantJSON, wantVersion := storeJSON(t, mem)
			if !bytes.Equal(gotJSON, wantJSON) || gotVersion != wantVersion {
				t.Fatal("recovered store does not equal the reference without the torn batch")
			}
			// The truncated log must accept appends again: re-ingesting the
			// torn batch lands it cleanly after the surviving records.
			if _, err := reopened.Store.Append(batches[len(batches)-1]); err != nil {
				t.Fatalf("append after torn-tail recovery: %v", err)
			}
			if _, err := mem.Append(batches[len(batches)-1]); err != nil {
				t.Fatal(err)
			}
			if err := reopened.Close(); err != nil {
				t.Fatal(err)
			}

			// A second open replays clean — the truncation was durable, no
			// further recovery fires — and sees the full corpus.
			again, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			if got := again.Store.TornTailRecoveries(); got != 0 {
				t.Errorf("second open TornTailRecoveries = %d, want 0", got)
			}
			gotJSON, gotVersion = storeJSON(t, again.Store)
			wantJSON, wantVersion = storeJSON(t, mem)
			if !bytes.Equal(gotJSON, wantJSON) || gotVersion != wantVersion {
				t.Fatal("store after recovery and re-append does not equal the reference")
			}
		})
	}
}

// TestOpenRecoversAbortedRotation pins the one tolerated shortfall: a
// final segment too short to hold even the header is an aborted rotation
// (it cannot contain a record, so no acknowledged batch is at stake) and
// is removed on open instead of wedging the directory forever.
func TestOpenRecoversAbortedRotation(t *testing.T) {
	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemStore()
	for _, batch := range testBatches(t) {
		if _, err := data.Store.Append(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := data.Close(); err != nil {
		t.Fatal(err)
	}
	aborted := filepath.Join(dir, "segments", "99999999.seg")
	if err := os.WriteFile(aborted, []byte("ER"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with an aborted final segment: %v", err)
	}
	defer reopened.Close()
	if _, err := os.Stat(aborted); !os.IsNotExist(err) {
		t.Errorf("aborted segment still present after recovery (stat err %v)", err)
	}
	gotJSON, gotVersion := storeJSON(t, reopened.Store)
	wantJSON, wantVersion := storeJSON(t, mem)
	if !bytes.Equal(gotJSON, wantJSON) || gotVersion != wantVersion {
		t.Error("recovered store diverged from the acknowledged batches")
	}
	// And the recovered store keeps accepting writes.
	if _, err := reopened.Store.Append(testBatches(t)[0]); err != nil {
		t.Errorf("append after recovery: %v", err)
	}
}

// TestOpenRejectsSecondWriter pins the single-writer lock: two live
// handles on one data directory would interleave journal records, so the
// second Open must fail while the first is open and succeed after it
// closes.
func TestOpenRejectsSecondWriter(t *testing.T) {
	dir := t.TempDir()
	first, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "in use by another process") {
		t.Fatalf("second Open err = %v, want in-use refusal", err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	again.Close()
}

// TestAppendJournalFailureRejectsBatch pins the write-ahead contract: if
// the journal write fails, the batch is rejected and the live store is
// untouched (memory never runs ahead of disk), and the store turns
// read-only rather than letting the two drift on later appends.
func TestAppendJournalFailureRejectsBatch(t *testing.T) {
	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	batches := testBatches(t)
	if _, err := data.Store.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	before := data.Store.Stats()

	// Sabotage the journal: close the segment file out from under the
	// store, as a full or failing disk would.
	data.Store.seg.Close()
	if _, err := data.Store.Append(batches[1]); err == nil {
		t.Fatal("Append succeeded with an unwritable journal")
	}
	if got := data.Store.Stats(); got != before {
		t.Errorf("failed append mutated the store: %+v, want %+v", got, before)
	}
	// Poisoned: even with a healthy-looking call the store refuses.
	if _, err := data.Store.Append(batches[2]); err == nil ||
		!strings.Contains(err.Error(), "read-only after a journal failure") {
		t.Errorf("append after journal failure err = %v, want read-only refusal", err)
	}

	// A restart replays exactly the acknowledged prefix. Close first to
	// release the directory lock; the close itself reports the poisoned
	// segment, which is fine — the process is giving up anyway.
	_ = data.Close()
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Store.Stats(); got != before {
		t.Errorf("replayed store %+v, want the acknowledged prefix %+v", got, before)
	}
}

func testPipeline(t *testing.T) *pipeline.Pipeline {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Seed = 42
	pl, err := pipeline.New(pipeline.Config{Options: opts, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestSnapshotDirRoundTrip saves a real snapshot and loads it back: same
// block count, full reuse on the next incremental run.
func TestSnapshotDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()

	pl := testPipeline(t)
	var cols []*corpus.Collection
	for _, batch := range testBatches(t) {
		cols = batch // batches are per-slice; resolve the first alone
		break
	}
	run, err := pl.RunIncremental(context.Background(), cols, nil)
	if err != nil {
		t.Fatal(err)
	}

	const key = "best|closure|exact|0.1|10|42"
	if snap, err := data.Snapshots.Load(key, pl); err != nil || snap != nil {
		t.Fatalf("Load before any Save = (%v, %v), want (nil, nil)", snap, err)
	}
	if err := data.Snapshots.Save(key, run.Snapshot); err != nil {
		t.Fatal(err)
	}
	loaded, err := data.Snapshots.Load(key, pl)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Blocks() != run.Snapshot.Blocks() {
		t.Fatalf("loaded %d blocks, saved %d", loaded.Blocks(), run.Snapshot.Blocks())
	}
	again, err := pl.RunIncremental(context.Background(), cols, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Reused != again.Stats.Blocks {
		t.Errorf("stats after load = %+v, want full reuse", again.Stats)
	}

	// A key mismatch (hash collision, copied file) is detected.
	sameFileKey := key + "X"
	src := data.Snapshots.path(key)
	if err := os.Link(src, data.Snapshots.path(sameFileKey)); err != nil {
		t.Fatal(err)
	}
	if _, err := data.Snapshots.Load(sameFileKey, pl); err == nil ||
		!strings.Contains(err.Error(), "was saved for configuration") {
		t.Fatalf("key-mismatch Load err = %v", err)
	}
}

// TestSnapshotDirPrunesOldestBeyondCap pins the disk bound: the snapshot
// directory keeps at most MaxFiles files, dropping the oldest, so
// client-chosen knob values (seeds) cannot grow the data directory
// without bound.
func TestSnapshotDirPrunesOldestBeyondCap(t *testing.T) {
	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	data.Snapshots.MaxFiles = 2

	pl := testPipeline(t)
	run, err := pl.RunIncremental(context.Background(), testBatches(t)[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"seed-1", "seed-2", "seed-3"}
	for _, key := range keys {
		if err := data.Snapshots.Save(key, run.Snapshot); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the prune order is deterministic.
		time.Sleep(5 * time.Millisecond)
	}
	files, err := filepath.Glob(filepath.Join(dir, "snapshots", "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("%d snapshot files survive, want cap 2", len(files))
	}
	if snap, err := data.Snapshots.Load("seed-1", pl); err != nil || snap != nil {
		t.Errorf("oldest key Load = (%v, %v), want pruned (nil, nil)", snap, err)
	}
	for _, key := range keys[1:] {
		if snap, err := data.Snapshots.Load(key, pl); err != nil || snap == nil {
			t.Errorf("recent key %s Load = (%v, %v), want retained", key, snap, err)
		}
	}
}

// TestSnapshotDirRejectsDamage pins snapshot-file crash paths: truncation
// and version skew surface the codec's typed errors through Load.
func TestSnapshotDirRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	data, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	pl := testPipeline(t)
	cols := testBatches(t)[0]
	run, err := pl.RunIncremental(context.Background(), cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	const key = "k"
	if err := data.Snapshots.Save(key, run.Snapshot); err != nil {
		t.Fatal(err)
	}
	path := data.Snapshots.path(key)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated mid-payload: corrupt, not a partial snapshot.
	if err := os.WriteFile(path, good[:len(good)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := data.Snapshots.Load(key, pl); !errors.Is(err, pipeline.ErrSnapshotCorrupt) {
		t.Fatalf("truncated Load err = %v, want ErrSnapshotCorrupt", err)
	}

	// A future codec version: typed version error for fallback logic.
	bad := append([]byte(nil), good...)
	// The codec version field sits right after the envelope (magic + key
	// length + key) and the codec magic.
	off := len(snapFileMagic) + 4 + len(key) + 8
	bad[off] = 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := data.Snapshots.Load(key, pl); !errors.Is(err, pipeline.ErrSnapshotVersion) {
		t.Fatalf("version-skew Load err = %v, want ErrSnapshotVersion", err)
	}

	// A crash mid-save must never clobber the published file: temp files
	// are invisible to Load.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshots", ".snap-leftover"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, err := data.Snapshots.Load(key, pl); err != nil || snap == nil {
		t.Fatalf("Load with a stray temp file = (%v, %v), want the published snapshot", snap, err)
	}
}
