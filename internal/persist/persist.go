// Package persist implements the disk backends behind `ersolve serve
// -data`: a durable store.DocumentStore that journals every ingest batch
// to an append-only segment log and replays it on open, and snapshot and
// index directories holding one versioned file per configuration.
// Together they let a restarted server resume with both the corpus and
// every configuration's incremental state intact — the first incremental
// resolution after a restart reuses every block.
//
// Durability model: a batch is journaled (written and fsynced) before
// Append returns, so an acknowledged ingest survives a crash. Replay
// re-runs the journaled batches through the same in-memory merge the live
// path uses, and that merge is deterministic, so the reopened store is
// byte-identical to the pre-crash one — preserving the append-only
// document positions incremental resolution fingerprints. Snapshot and
// index files are written to a temporary file and atomically renamed into
// place, so a crash mid-save leaves the previous file intact.
//
// Recovery model: damage is classified before it is punished. A torn tail
// — the final record of the newest segment cut short or checksum-broken,
// with nothing after it — is the legitimate artifact of a power cut
// mid-append; since the write was never acknowledged, the log is
// truncated to the last good record and appending continues (the event is
// logged and counted). Interior corruption — damage with acknowledged
// records after it, a foreign header, an unreadable interior segment —
// still fails Open with a clear error: acknowledged data is at stake and
// silently shortening the log would violate the append-only contract.
// Damaged snapshot or index files are quarantined (renamed *.corrupt) on
// load so the caller rebuilds from the journaled corpus instead of
// tripping over the same file forever. All file I/O goes through
// internal/faultfs, so the crash harness can interrupt any boundary.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"repro/internal/corpus"
	"repro/internal/faultfs"
	"repro/internal/store"
)

// segmentMagic heads every segment file; the digit is the segment format
// version.
const segmentMagic = "ERSEG001"

// maxSegmentBytes rotates the active segment once it grows past this
// size, bounding the cost of a damaged file and keeping replay I/O in
// file-sized chunks. A var so tests can force rotation cheaply.
var maxSegmentBytes int64 = 8 << 20

// maxRecordBytes bounds a single journaled batch; a corrupt length field
// fails fast instead of attempting a multi-gigabyte allocation.
const maxRecordBytes = 1 << 30

// segmentCRC is the Castagnoli table used for record checksums.
var segmentCRC = crc32.MakeTable(crc32.Castagnoli)

// Options customizes Open beyond its defaults; the zero value selects the
// real filesystem and the standard logger.
type Options struct {
	// FS is the filesystem the backends write through; nil selects the
	// real one. Tests thread a faultfs.Injector here to crash the store
	// at chosen I/O boundaries.
	FS faultfs.FS
	// Log receives recovery and quarantine events (torn-tail truncation,
	// corrupt-file quarantine); nil selects log.Printf.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.Log == nil {
		o.Log = log.Printf
	}
	return o
}

// Data bundles the disk backends rooted in one -data directory.
type Data struct {
	// Store is the durable document store.
	Store *Store
	// Snapshots is the per-configuration snapshot directory.
	Snapshots *SnapshotDir
	// Indexes is the per-blocking-configuration sharded index directory: a
	// restarted server reloads its blocking indexes instead of re-keying
	// and re-blocking the corpus.
	Indexes *IndexDir
	// ANN is the per-configuration approximate candidate index directory
	// (same DIR/indexes tree, .ann files): a restarted server reloads its
	// proximity graphs instead of re-inserting the corpus.
	ANN *ANNDir
	// Serving is the per-resolution-configuration serving-index directory:
	// a restarted server answers cluster lookups from the last committed
	// resolution with zero recompute.
	Serving *ServingDir

	lock *os.File
}

// Open prepares the data directory (creating it if needed), takes an
// exclusive lock on it, replays the segment log into a fresh in-memory
// store, and returns the durable backends. A torn tail on the newest
// segment is recovered by truncation (no acknowledged batch can live
// there); every other sign of corruption fails with a descriptive error,
// as does another live process already owning the directory (two writers
// appending to one journal would interleave records and destroy it). The
// lock is advisory (flock) and released by Close or process death, so a
// crashed process never wedges a restart.
func Open(dir string) (*Data, error) {
	return OpenWithOptions(dir, Options{})
}

// OpenWithOptions is Open with an explicit filesystem and event logger.
func OpenWithOptions(dir string, opts Options) (*Data, error) {
	opts = opts.withDefaults()
	segDir := filepath.Join(dir, "segments")
	snapDir := filepath.Join(dir, "snapshots")
	idxDir := filepath.Join(dir, "indexes")
	srvDir := filepath.Join(dir, "serving")
	for _, d := range []string{segDir, snapDir, idxDir, srvDir} {
		if err := opts.FS.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("persist: creating %s: %w", d, err)
		}
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	st, err := openStore(segDir, opts)
	if err != nil {
		lock.Close()
		return nil, err
	}
	snaps, err := newSnapshotDir(snapDir, opts)
	if err != nil {
		st.Close()
		lock.Close()
		return nil, err
	}
	indexes, err := newIndexDir(idxDir, opts)
	if err != nil {
		st.Close()
		lock.Close()
		return nil, err
	}
	annDir, err := newANNDir(idxDir, opts)
	if err != nil {
		st.Close()
		lock.Close()
		return nil, err
	}
	srv, err := newServingDir(srvDir, opts)
	if err != nil {
		st.Close()
		lock.Close()
		return nil, err
	}
	return &Data{Store: st, Snapshots: snaps, Indexes: indexes, ANN: annDir, Serving: srv, lock: lock}, nil
}

// lockDir takes a non-blocking exclusive flock on DIR/lock. The lock file
// bypasses the pluggable filesystem: flock needs a real descriptor, and a
// simulated crash must keep holding the real lock exactly as a dying
// process would until its descriptors close.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "lock")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644) // erlint:ignore flock needs a real OS descriptor; fault injection must never fake lock ownership
	if err != nil {
		return nil, fmt.Errorf("persist: opening lock file %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data directory %s is in use by another process (flock %s: %w)",
			dir, path, err)
	}
	return f, nil
}

// Close flushes and closes the active segment and releases the directory
// lock. Snapshot saves are self-contained (atomic per call), so only the
// store needs a close.
func (d *Data) Close() error {
	err := d.Store.Close()
	if d.lock != nil {
		if cerr := d.lock.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("persist: releasing data directory lock: %w", cerr)
		}
		d.lock = nil
	}
	return err
}

// Store is the disk-backed DocumentStore: an in-memory MemStore for reads
// plus an append-only journal of every committed ingest batch. The
// journal records the batches exactly as they arrived (before ID/persona
// remapping); replay re-applies them through MemStore.Append, whose merge
// is deterministic, reproducing the in-memory state byte for byte.
type Store struct {
	mu      sync.Mutex
	mem     *store.MemStore
	fsys    faultfs.FS
	logf    func(format string, args ...any)
	dir     string
	seg     faultfs.File
	segSeq  int
	segSize int64
	closed  bool
	// tornTails counts the torn-tail recoveries replay performed on this
	// open: newest-segment records cut short by a crash mid-append,
	// truncated away because they were never acknowledged.
	tornTails int
	// failed is the sticky first journal error. After a failed or torn
	// record write the on-disk log no longer matches what further merges
	// would build, so the store refuses all subsequent Appends rather
	// than letting memory and disk drift apart; reads keep working.
	failed error
}

var _ store.DocumentStore = (*Store)(nil)
var _ store.AppendObserver = (*Store)(nil)

// SubscribeAppend implements store.AppendObserver by forwarding to the
// in-memory merge target: subscribers see every batch the journal
// committed. Replay happens before any subscriber can register (open
// finishes first), so a restart does not replay notifications.
func (s *Store) SubscribeAppend(fn func(store.AppendEvent)) {
	s.mem.SubscribeAppend(fn)
}

// TornTailRecoveries reports how many torn journal tails this open
// truncated away — the service surfaces it in /v1/stats so operators see
// that a crash recovery happened (and that it cost no acknowledged data).
func (s *Store) TornTailRecoveries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tornTails
}

// segmentPath names segment seq inside dir.
func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
}

// openStore replays every segment in dir and opens the newest one for
// appending, recovering the newest segment's torn tail if a crash
// mid-append left one.
func openStore(dir string, opts Options) (*Store, error) {
	names, err := opts.FS.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, fmt.Errorf("persist: listing segments: %w", err)
	}
	sort.Strings(names)

	s := &Store{mem: store.NewMemStore(), dir: dir, fsys: opts.FS, logf: opts.Log}
	for i, name := range names {
		if i == len(names)-1 {
			// A crash between creating a new segment and syncing its
			// header leaves a final file too short to hold even the
			// magic. Such a file cannot contain any record — no
			// acknowledged data is at stake — so it is an aborted
			// rotation artifact, not corruption: remove it and recreate
			// it cleanly below. Anything ≥ header-sized still gets the
			// full magic/framing checks.
			if info, err := s.fsys.Stat(name); err == nil && info.Size() < int64(len(segmentMagic)) {
				if err := s.fsys.Remove(name); err != nil {
					return nil, fmt.Errorf("persist: removing aborted segment %s: %w", name, err)
				}
				names = names[:len(names)-1]
				break
			}
		}
		tornAt, err := s.replaySegment(name, i == len(names)-1)
		if err != nil {
			return nil, err
		}
		if tornAt >= 0 {
			if err := s.recoverTornTail(name, tornAt); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range names {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(name), "%d.seg", &seq); err == nil && seq > s.segSeq {
			s.segSeq = seq
		}
	}

	if len(names) > 0 {
		// Append to the newest segment rather than opening a new one per
		// process start.
		last := names[len(names)-1]
		f, err := s.fsys.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("persist: opening %s for append: %w", last, err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: sizing %s: %w", last, err)
		}
		s.seg, s.segSize = f, info.Size()
		return s, nil
	}
	if err := s.startSegment(1); err != nil {
		return nil, err
	}
	return s, nil
}

// recoverTornTail truncates the newest segment to the end of its last
// good record and makes the truncation durable. Only unacknowledged bytes
// are cut: the torn record's Append returned an error (or never
// returned), so no client was promised it.
func (s *Store) recoverTornTail(name string, tornAt int64) error {
	info, err := s.fsys.Stat(name)
	if err != nil {
		return fmt.Errorf("persist: sizing torn segment %s: %w", name, err)
	}
	s.logf("persist: segment %s: torn tail at offset %d: truncating %d trailing bytes of an unacknowledged write (recovered, no acked data lost)",
		name, tornAt, info.Size()-tornAt)
	if err := s.fsys.Truncate(name, tornAt); err != nil {
		return fmt.Errorf("persist: truncating torn tail of %s: %w", name, err)
	}
	// Sync the truncation: recovery that itself evaporates on the next
	// power cut would re-run forever, and appends assume the file ends at
	// the recorded offset.
	f, err := s.fsys.OpenFile(name, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: reopening %s after truncation: %w", name, err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("persist: syncing truncated %s: %w", name, err)
	}
	s.tornTails++
	return nil
}

// startSegment creates segment seq with its header and makes it the
// active one. The containing directory is fsynced too: without that, a
// power loss can erase the directory entry of a freshly created segment
// and with it every batch acked into it — the exact loss the
// fsync-before-ack contract rules out.
func (s *Store) startSegment(seq int) error {
	path := segmentPath(s.dir, seq)
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating segment %s: %w", path, err)
	}
	if _, err := io.WriteString(f, segmentMagic); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing %s header: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing %s header: %w", path, err)
	}
	if err := s.syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.seg, s.segSeq, s.segSize = f, seq, int64(len(segmentMagic))
	return nil
}

// syncDir fsyncs a directory so entries created or renamed into it
// survive a power loss.
func (s *Store) syncDir(dir string) error {
	if err := s.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("persist: syncing directory %s: %w", dir, err)
	}
	return nil
}

// replaySegment re-applies every journaled batch of one segment file and
// classifies damage. On the newest segment, a final record cut short or
// checksum-broken with nothing after it is a torn tail — the legitimate
// remains of a crash mid-append, never acknowledged — reported through
// the tornAt offset (≥ 0, the end of the last good record) for the caller
// to truncate. Everything else — interior damage, damage on an older
// segment, a bad header — is an error: the log is the durable corpus, and
// resolving against a silently shortened one would violate the
// append-only contract.
func (s *Store) replaySegment(path string, newest bool) (tornAt int64, err error) {
	f, err := s.fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return -1, fmt.Errorf("persist: opening segment %s: %w", path, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return -1, fmt.Errorf("persist: sizing segment %s: %w", path, err)
	}
	size := info.Size()

	header := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(f, header); err != nil {
		return -1, fmt.Errorf("persist: segment %s: truncated header: %w", path, err)
	}
	if string(header) != segmentMagic {
		return -1, fmt.Errorf("persist: segment %s: bad magic %q (foreign file or unsupported segment version)",
			path, header)
	}

	offset := int64(len(segmentMagic))
	var frame [8]byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			if err == io.EOF {
				return -1, nil // clean record boundary
			}
			// A partial frame necessarily runs to EOF: torn tail on the
			// newest segment, corruption anywhere else.
			if newest {
				return offset, nil
			}
			return -1, fmt.Errorf("persist: segment %s: truncated record frame at offset %d: %w", path, offset, err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		end := offset + 8 + int64(length)
		if end > size {
			// The declared payload runs past EOF — either a torn write
			// (payload cut short) or a corrupt length field; in both
			// cases nothing can follow it, so on the newest segment it is
			// recoverable. Checked before allocating so a corrupt length
			// cannot drive a huge allocation either way.
			if newest {
				return offset, nil
			}
			return -1, fmt.Errorf("persist: segment %s: record at offset %d runs past end of file (declares %d bytes)",
				path, offset, length)
		}
		if length > maxRecordBytes {
			return -1, fmt.Errorf("persist: segment %s: record at offset %d declares %d bytes (corrupt length)",
				path, offset, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return -1, fmt.Errorf("persist: segment %s: truncated record payload at offset %d: %w", path, offset, err)
		}
		if got := crc32.Checksum(payload, segmentCRC); got != sum {
			// A checksum-broken FINAL record is a torn write whose middle
			// never hit the platter; one with records after it is interior
			// corruption — those later records were acknowledged, so
			// truncating here would lose acked data.
			if newest && end == size {
				return offset, nil
			}
			return -1, fmt.Errorf("persist: segment %s: record at offset %d: checksum %08x, frame declares %08x",
				path, offset, got, sum)
		}
		var batch []*corpus.Collection
		if err := json.Unmarshal(payload, &batch); err != nil {
			// The checksum matched, so these are the bytes the writer
			// wrote — not a torn write. Never recoverable.
			return -1, fmt.Errorf("persist: segment %s: record at offset %d: %w", path, offset, err)
		}
		if _, err := s.mem.Append(batch); err != nil {
			return -1, fmt.Errorf("persist: segment %s: replaying record at offset %d: %w", path, offset, err)
		}
		offset = end
	}
}

// Append implements store.DocumentStore as a write-ahead log: the batch
// is validated, journaled (written and fsynced), and only then merged in
// memory — so a failed journal write rejects the batch with the live
// store untouched, and memory and disk can never diverge. Validation
// first guarantees the post-journal merge cannot fail (ValidateBatch is
// exactly Append's acceptance check). Holding one lock across both steps
// keeps the journal order identical to the merge order.
func (s *Store) Append(cols []*corpus.Collection) (int, error) {
	if err := store.ValidateBatch(cols); err != nil {
		return 0, err
	}
	payload, err := json.Marshal(cols)
	if err != nil {
		return 0, fmt.Errorf("persist: encoding batch: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("persist: batch is %d bytes, the journal caps records at %d", len(payload), maxRecordBytes)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("persist: store is closed")
	}
	if s.failed != nil {
		return 0, fmt.Errorf("persist: store is read-only after a journal failure: %w", s.failed)
	}
	if s.segSize >= maxSegmentBytes {
		if err := s.rotate(); err != nil {
			// Rotation may have closed the old segment without opening
			// a new one; no journal is writable, so poison the store.
			s.failed = err
			return 0, err
		}
	}
	record := make([]byte, 0, 8+len(payload))
	record = binary.LittleEndian.AppendUint32(record, uint32(len(payload)))
	record = binary.LittleEndian.AppendUint32(record, crc32.Checksum(payload, segmentCRC))
	record = append(record, payload...)
	if _, err := s.seg.Write(record); err != nil {
		// The journal may now hold a torn record. The batch was NOT
		// merged, so the live store still matches the replayable prefix
		// of the log; poisoning the store keeps it that way, and the
		// next open truncates the torn tail.
		s.failed = err
		return 0, fmt.Errorf("persist: journaling batch: %w", err)
	}
	if err := s.seg.Sync(); err != nil {
		// The record is written but its durability is unknown; merging
		// it would risk memory holding a batch a restart cannot replay.
		s.failed = err
		return 0, fmt.Errorf("persist: syncing journal: %w", err)
	}
	s.segSize += int64(len(record))
	return s.mem.Append(cols)
}

// rotate closes the active segment and starts the next one.
func (s *Store) rotate() error {
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("persist: syncing segment before rotation: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("persist: closing segment before rotation: %w", err)
	}
	return s.startSegment(s.segSeq + 1)
}

// Snapshot implements store.DocumentStore.
func (s *Store) Snapshot() ([]*corpus.Collection, uint64) {
	return s.mem.Snapshot()
}

// Stats implements store.DocumentStore.
func (s *Store) Stats() store.Stats {
	return s.mem.Stats()
}

// Close flushes and closes the active segment; further Appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		return fmt.Errorf("persist: syncing segment on close: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("persist: closing segment: %w", err)
	}
	return nil
}
