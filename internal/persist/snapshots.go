package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/pipeline"
)

// snapFileMagic heads every snapshot file; the digit is the envelope
// format version. The envelope records which configuration key the
// snapshot belongs to; the pipeline codec inside carries its own format
// version and checksum.
const snapFileMagic = "ERSNF001"

// maxSnapshotKeyBytes bounds the envelope's key field so a corrupt length
// cannot drive a huge allocation.
const maxSnapshotKeyBytes = 1 << 16

// defaultMaxSnapshotFiles caps how many configurations keep a snapshot
// file. Knobs include client-chosen values (seed, train fraction), so
// without a cap a client iterating seeds would grow the directory — each
// file holding every block's matrices — without bound.
const defaultMaxSnapshotFiles = 64

// SnapshotDir stores one encoded pipeline.Snapshot per resolution
// configuration, each in its own file named by a hash of the
// configuration key. Saves are atomic (temp file + rename), so a crash
// mid-save leaves the previous snapshot intact; the configuration key is
// recorded inside the file and verified on load, so a hash collision or a
// misplaced file is detected instead of resolving with foreign state. A
// file that fails its load checks is quarantined — renamed *.corrupt — so
// the caller's rebuild from the journaled corpus replaces it rather than
// re-hitting the same damage on every restart. Concurrent saves need no
// lock: each Save writes a unique temp file and publishes it with an
// atomic rename, and the service layer already serializes runs (and
// therefore saves) of the same configuration.
type SnapshotDir struct {
	dir  string
	fsys faultfs.FS
	logf func(format string, args ...any)
	// MaxFiles bounds the number of .snap files kept; after each save the
	// oldest files beyond the cap are pruned (best effort). Values < 1
	// select defaultMaxSnapshotFiles.
	MaxFiles int
	// quarantined counts the damaged files Load renamed aside.
	quarantined atomic.Int64
}

// NewSnapshotDir returns a snapshot directory rooted at dir, creating it
// if needed and sweeping temp files orphaned by a crash mid-save (no
// concurrent Save can race construction). Open wires one up
// automatically; this constructor exists for callers embedding the
// snapshot store without the segment log.
func NewSnapshotDir(dir string) (*SnapshotDir, error) {
	return newSnapshotDir(dir, Options{}.withDefaults())
}

func newSnapshotDir(dir string, opts Options) (*SnapshotDir, error) {
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	sweepOrphans(opts.FS, dir, ".snap-*")
	return &SnapshotDir{dir: dir, fsys: opts.FS, logf: opts.Log}, nil
}

// sweepOrphans removes the temp files a crash mid-save leaves behind:
// current saves suffix their temp files .tmp, and the legacy prefix
// pattern is swept too so directories written by older builds come clean.
// Best effort — an orphan is wasted bytes, never a correctness risk.
func sweepOrphans(fsys faultfs.FS, dir, legacyPattern string) {
	for _, pattern := range []string{"*.tmp", legacyPattern} {
		names, err := fsys.Glob(filepath.Join(dir, pattern))
		if err != nil {
			continue
		}
		for _, name := range names {
			_ = fsys.Remove(name)
		}
	}
}

// path names the snapshot file of one configuration key.
func (d *SnapshotDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:12])+".snap")
}

// Quarantined reports how many damaged snapshot files this directory has
// renamed aside since it was opened.
func (d *SnapshotDir) Quarantined() int64 { return d.quarantined.Load() }

// quarantine renames a damaged file to NAME.corrupt (replacing any
// earlier quarantine of the same file, so damage cannot accumulate
// unbounded copies) and logs why. Best effort: if even the rename fails,
// the caller's typed error still tells the service to rebuild.
func quarantine(counter *atomic.Int64, fsys faultfs.FS, logf func(string, ...any), path string, reason error) {
	dst := path + ".corrupt"
	if err := fsys.Rename(path, dst); err != nil {
		logf("persist: quarantining %s: %v", path, err)
		return
	}
	counter.Add(1)
	logf("persist: quarantined %s -> %s (%v); it will be rebuilt from the journaled corpus", path, dst, reason)
}

// Save atomically writes the snapshot for one configuration key. The
// envelope and codec stream straight into the temp file (the codec's
// internal payload buffer is the only in-memory copy), and the previous
// file, if any, is replaced only after the new one is fully written and
// synced.
func (d *SnapshotDir) Save(key string, snap *pipeline.Snapshot) error {
	if len(key) > maxSnapshotKeyBytes {
		return fmt.Errorf("persist: snapshot key is %d bytes, cap is %d", len(key), maxSnapshotKeyBytes)
	}
	tmp, err := d.fsys.CreateTemp(d.dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	defer d.fsys.Remove(tmp.Name()) // no-op after a successful rename

	var envelope bytes.Buffer
	envelope.WriteString(snapFileMagic)
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	envelope.Write(klen[:])
	envelope.WriteString(key)
	if _, err := tmp.Write(envelope.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing snapshot envelope: %w", err)
	}
	if err := pipeline.EncodeSnapshot(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot temp file: %w", err)
	}
	if err := d.fsys.Rename(tmp.Name(), d.path(key)); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	// Sync the directory so the rename itself survives a crash; a save
	// whose durability is not established must not report success.
	if err := d.fsys.SyncDir(d.dir); err != nil {
		return fmt.Errorf("persist: syncing directory %s: %w", d.dir, err)
	}
	d.prune()
	return nil
}

// Touch refreshes the recency of key's snapshot file so mtime-ordered
// pruning does not evict the busiest configuration (whose file is
// otherwise never rewritten thanks to unchanged-run save skipping). It
// fails when the file is absent — pruned or never saved — which tells
// the caller to do a full Save instead.
func (d *SnapshotDir) Touch(key string) error {
	now := time.Now()
	if err := d.fsys.Chtimes(d.path(key), now, now); err != nil {
		return fmt.Errorf("persist: refreshing snapshot recency: %w", err)
	}
	return nil
}

// prune removes the oldest snapshot files beyond the cap, best effort: a
// pruning failure never fails the save that triggered it.
func (d *SnapshotDir) prune() {
	limit := d.MaxFiles
	if limit < 1 {
		limit = defaultMaxSnapshotFiles
	}
	pruneOldest(d.fsys, filepath.Join(d.dir, "*.snap"), limit)
}

// pruneOldest removes the oldest files matching pattern beyond limit.
func pruneOldest(fsys faultfs.FS, pattern string, limit int) {
	names, err := fsys.Glob(pattern)
	if err != nil || len(names) <= limit {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	files := make([]aged, 0, len(names))
	for _, name := range names {
		info, err := fsys.Stat(name)
		if err != nil {
			continue
		}
		files = append(files, aged{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for i := 0; i+limit < len(files); i++ {
		_ = fsys.Remove(files[i].name)
	}
}

// Load reads the snapshot saved for key and decodes it against pl (which
// must be configured identically to the pipeline that produced it — the
// key is the caller's encoding of that configuration). A missing file
// returns (nil, nil): no snapshot is not an error. A present-but-damaged
// file is quarantined (renamed *.corrupt) and returns the codec's typed
// error so the caller can distinguish version skew
// (pipeline.ErrSnapshotVersion) from corruption — and rebuild either way,
// knowing the next Save starts clean.
func (d *SnapshotDir) Load(key string, pl *pipeline.Pipeline) (*pipeline.Snapshot, error) {
	path := d.path(key)
	f, err := d.fsys.OpenFile(path, os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening snapshot: %w", err)
	}
	defer f.Close()

	damaged := func(err error) error {
		quarantine(&d.quarantined, d.fsys, d.logf, path, err)
		return err
	}
	header := make([]byte, len(snapFileMagic)+4)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, damaged(fmt.Errorf("persist: snapshot %s: truncated envelope: %w", path, err))
	}
	if string(header[:len(snapFileMagic)]) != snapFileMagic {
		return nil, damaged(fmt.Errorf("persist: snapshot %s: bad magic %q (foreign file or unsupported envelope version)",
			path, header[:len(snapFileMagic)]))
	}
	klen := binary.LittleEndian.Uint32(header[len(snapFileMagic):])
	if klen > maxSnapshotKeyBytes {
		return nil, damaged(fmt.Errorf("persist: snapshot %s: key length %d is corrupt", path, klen))
	}
	gotKey := make([]byte, klen)
	if _, err := io.ReadFull(f, gotKey); err != nil {
		return nil, damaged(fmt.Errorf("persist: snapshot %s: truncated key: %w", path, err))
	}
	if string(gotKey) != key {
		return nil, damaged(fmt.Errorf("persist: snapshot %s was saved for configuration %q, not %q",
			path, gotKey, key))
	}
	snap, err := pl.DecodeSnapshot(f)
	if err != nil {
		return nil, damaged(fmt.Errorf("persist: snapshot %s: %w", path, err))
	}
	return snap, nil
}
