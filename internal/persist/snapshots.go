package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/pipeline"
)

// snapFileMagic heads every snapshot file; the digit is the envelope
// format version. The envelope records which configuration key the
// snapshot belongs to; the pipeline codec inside carries its own format
// version and checksum.
const snapFileMagic = "ERSNF001"

// maxSnapshotKeyBytes bounds the envelope's key field so a corrupt length
// cannot drive a huge allocation.
const maxSnapshotKeyBytes = 1 << 16

// defaultMaxSnapshotFiles caps how many configurations keep a snapshot
// file. Knobs include client-chosen values (seed, train fraction), so
// without a cap a client iterating seeds would grow the directory — each
// file holding every block's matrices — without bound.
const defaultMaxSnapshotFiles = 64

// SnapshotDir stores one encoded pipeline.Snapshot per resolution
// configuration, each in its own file named by a hash of the
// configuration key. Saves are atomic (temp file + rename), so a crash
// mid-save leaves the previous snapshot intact; the configuration key is
// recorded inside the file and verified on load, so a hash collision or a
// misplaced file is detected instead of resolving with foreign state.
// Concurrent saves need no lock: each Save writes a unique temp file and
// publishes it with an atomic rename, and the service layer already
// serializes runs (and therefore saves) of the same configuration.
type SnapshotDir struct {
	dir string
	// MaxFiles bounds the number of .snap files kept; after each save the
	// oldest files beyond the cap are pruned (best effort). Values < 1
	// select defaultMaxSnapshotFiles.
	MaxFiles int
}

// NewSnapshotDir returns a snapshot directory rooted at dir, creating it
// if needed and sweeping temp files orphaned by a crash mid-save (no
// concurrent Save can race construction). Open wires one up
// automatically; this constructor exists for callers embedding the
// snapshot store without the segment log.
func NewSnapshotDir(dir string) (*SnapshotDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	if orphans, err := filepath.Glob(filepath.Join(dir, ".snap-*")); err == nil {
		for _, name := range orphans {
			_ = os.Remove(name)
		}
	}
	return &SnapshotDir{dir: dir}, nil
}

// path names the snapshot file of one configuration key.
func (d *SnapshotDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:12])+".snap")
}

// Save atomically writes the snapshot for one configuration key. The
// envelope and codec stream straight into the temp file (the codec's
// internal payload buffer is the only in-memory copy), and the previous
// file, if any, is replaced only after the new one is fully written and
// synced.
func (d *SnapshotDir) Save(key string, snap *pipeline.Snapshot) error {
	if len(key) > maxSnapshotKeyBytes {
		return fmt.Errorf("persist: snapshot key is %d bytes, cap is %d", len(key), maxSnapshotKeyBytes)
	}
	tmp, err := os.CreateTemp(d.dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	var envelope bytes.Buffer
	envelope.WriteString(snapFileMagic)
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	envelope.Write(klen[:])
	envelope.WriteString(key)
	if _, err := tmp.Write(envelope.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing snapshot envelope: %w", err)
	}
	if err := pipeline.EncodeSnapshot(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	// Sync the directory so the rename itself survives a crash; a save
	// whose durability is not established must not report success.
	if err := syncDir(d.dir); err != nil {
		return err
	}
	d.prune()
	return nil
}

// Touch refreshes the recency of key's snapshot file so mtime-ordered
// pruning does not evict the busiest configuration (whose file is
// otherwise never rewritten thanks to unchanged-run save skipping). It
// fails when the file is absent — pruned or never saved — which tells
// the caller to do a full Save instead.
func (d *SnapshotDir) Touch(key string) error {
	now := time.Now()
	if err := os.Chtimes(d.path(key), now, now); err != nil {
		return fmt.Errorf("persist: refreshing snapshot recency: %w", err)
	}
	return nil
}

// prune removes the oldest snapshot files beyond the cap, best effort: a
// pruning failure never fails the save that triggered it.
func (d *SnapshotDir) prune() {
	limit := d.MaxFiles
	if limit < 1 {
		limit = defaultMaxSnapshotFiles
	}
	names, err := filepath.Glob(filepath.Join(d.dir, "*.snap"))
	if err != nil || len(names) <= limit {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	files := make([]aged, 0, len(names))
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue
		}
		files = append(files, aged{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for i := 0; i+limit < len(files); i++ {
		_ = os.Remove(files[i].name)
	}
}

// Load reads the snapshot saved for key and decodes it against pl (which
// must be configured identically to the pipeline that produced it — the
// key is the caller's encoding of that configuration). A missing file
// returns (nil, nil): no snapshot is not an error. A present-but-damaged
// file returns the codec's typed error so the caller can distinguish
// version skew (pipeline.ErrSnapshotVersion) from corruption.
func (d *SnapshotDir) Load(key string, pl *pipeline.Pipeline) (*pipeline.Snapshot, error) {
	f, err := os.Open(d.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening snapshot: %w", err)
	}
	defer f.Close()

	header := make([]byte, len(snapFileMagic)+4)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: truncated envelope: %w", d.path(key), err)
	}
	if string(header[:len(snapFileMagic)]) != snapFileMagic {
		return nil, fmt.Errorf("persist: snapshot %s: bad magic %q (foreign file or unsupported envelope version)",
			d.path(key), header[:len(snapFileMagic)])
	}
	klen := binary.LittleEndian.Uint32(header[len(snapFileMagic):])
	if klen > maxSnapshotKeyBytes {
		return nil, fmt.Errorf("persist: snapshot %s: key length %d is corrupt", d.path(key), klen)
	}
	gotKey := make([]byte, klen)
	if _, err := io.ReadFull(f, gotKey); err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: truncated key: %w", d.path(key), err)
	}
	if string(gotKey) != key {
		return nil, fmt.Errorf("persist: snapshot %s was saved for configuration %q, not %q",
			d.path(key), gotKey, key)
	}
	snap, err := pl.DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: %w", d.path(key), err)
	}
	return snap, nil
}
