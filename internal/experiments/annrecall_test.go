package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestANNRecallSweep(t *testing.T) {
	rep, err := ANNRecallSweep(context.Background(), QuickConfig(), []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Docs == 0 || rep.ExactBlocks < 2 {
		t.Fatalf("degenerate baseline: %+v", rep)
	}
	if rep.ExactFp <= 0.5 {
		t.Errorf("exact canopy end-to-end Fp = %v, expected a working resolution", rep.ExactFp)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		// The recall floor the bench gate enforces; the sweep must clear
		// it at every beam width it reports.
		if p.Recall < 0.95 {
			t.Errorf("ef=%d: candidate recall %v below the 0.95 floor", p.EfSearch, p.Recall)
		}
		if p.Blocks < 1 || p.Blocks > rep.ExactBlocks {
			t.Errorf("ef=%d: %d ANN blocks vs %d exact — components can only merge canopies, not split them",
				p.EfSearch, p.Blocks, rep.ExactBlocks)
		}
		if p.Fp <= 0.5 {
			t.Errorf("ef=%d: end-to-end Fp = %v, expected a working resolution", p.EfSearch, p.Fp)
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "exact") || !strings.Contains(out, "ef=16") {
		t.Errorf("render output %q", out)
	}
}
