package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestIncrementalSweep(t *testing.T) {
	rows, err := IncrementalSweep(context.Background(), QuickConfig(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("batch %d: incremental clusters diverged from full resolution", r.Batch)
		}
		if r.Prepared+r.Reused > r.Blocks {
			t.Errorf("batch %d: inconsistent stats %+v", r.Batch, r)
		}
	}
	if rows[0].Reused != 0 {
		t.Errorf("first batch reused %d blocks with no prior snapshot", rows[0].Reused)
	}
	// Later batches leave untouched collections clean; they must be reused.
	for _, r := range rows[1:] {
		if r.Reused == 0 {
			t.Errorf("batch %d: staggered delivery reused no blocks (%+v)", r.Batch, r)
		}
	}
	if rows[len(rows)-1].Docs <= rows[0].Docs {
		t.Errorf("corpus did not grow: %+v", rows)
	}
	if out := RenderIncrementalSweep(rows); !strings.Contains(out, "batch") {
		t.Errorf("render output %q", out)
	}
}
