package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps test runtime low: the shape assertions run on the full
// datasets via the benchmark harness; these tests exercise correctness of
// the experiment plumbing.
func tinyConfig() Config {
	return Config{Seed: 2010, Runs: 1, TrainFraction: 0.10, RegionK: 10}
}

func TestFigure1(t *testing.T) {
	f, err := Figure1(t.Context(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.FuncID != "F3" || f.Name != "cohen" {
		t.Errorf("identifies %s/%s", f.FuncID, f.Name)
	}
	if len(f.Accuracy) == 0 || len(f.Accuracy) != len(f.Support) {
		t.Fatalf("accuracy/support shapes: %d/%d", len(f.Accuracy), len(f.Support))
	}
	if len(f.Boundaries) != len(f.Accuracy) {
		t.Errorf("boundaries = %d, regions = %d", len(f.Boundaries), len(f.Accuracy))
	}
	if f.Boundaries[len(f.Boundaries)-1] != 1 {
		t.Error("last boundary must be 1")
	}
	for r, a := range f.Accuracy {
		if a < 0 || a > 1 {
			t.Errorf("region %d accuracy %v out of range", r, a)
		}
	}
	// The headline claim: accuracy varies significantly across regions.
	if f.Variation < 0.2 {
		t.Errorf("accuracy variation = %v, want >= 0.2", f.Variation)
	}
	if len(f.Centers) == 0 {
		t.Error("k-means centers missing")
	}
	rendered := f.Render()
	if !strings.Contains(rendered, "Figure 1") || !strings.Contains(rendered, "region") {
		t.Error("Render output malformed")
	}
}

func TestFigure2ShapeOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	f, err := Figure2(t.Context(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	labels := f.Table.RowLabels()
	if len(labels) != 11 { // F1..F10 + Combined
		t.Fatalf("rows = %v", labels)
	}
	if labels[10] != "Combined" {
		t.Errorf("last row = %q", labels[10])
	}
	for _, label := range labels {
		for _, col := range figureColumns {
			v, ok := f.Table.Get(label, col)
			if !ok || v < 0 || v > 1 {
				t.Errorf("%s/%s = %v, %v", label, col, v, ok)
			}
		}
	}
	// Combined must win Fp: the paper's headline.
	wins := f.CombinedWins()
	if !wins["Fp-measure"] {
		t.Error("combined does not win Fp-measure")
	}
	if !strings.Contains(f.Render(), "Combined") {
		t.Error("Render output malformed")
	}
}

func TestTableIIStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	table, err := TableII(t.Context(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := table.RowLabels()
	if len(rows) != 6 {
		t.Fatalf("rows = %v", rows)
	}
	// Every row key must have a paper counterpart.
	for _, row := range rows {
		if _, ok := PaperTableII[row]; !ok {
			t.Errorf("row %q has no paper-reported values", row)
		}
		for _, col := range tableIIColumns {
			v, ok := table.Get(row, col)
			if !ok || v < 0 || v > 1 {
				t.Errorf("%s/%s = %v, %v", row, col, v, ok)
			}
		}
	}
	checks := TableIIShapeChecks(table)
	if len(checks) == 0 {
		t.Fatal("no shape checks produced")
	}
	// With a single run some checks may be noisy; require the bulk to pass.
	pass := 0
	for _, line := range checks {
		if strings.HasPrefix(line, "PASS") {
			pass++
		}
	}
	if pass*3 < len(checks)*2 {
		t.Errorf("only %d/%d shape checks pass:\n%s", pass, len(checks), strings.Join(checks, "\n"))
	}
}

func TestTableIIIStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	table, err := TableIII(t.Context(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := table.RowLabels()
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 names", len(rows))
	}
	for _, row := range rows {
		for _, col := range tableIIIColumns {
			v, ok := table.Get(row, col)
			if !ok || v < 0 || v > 1 {
				t.Errorf("%s/%s = %v, %v", row, col, v, ok)
			}
		}
	}
	checks := TableIIIShapeChecks(table)
	for _, line := range checks {
		if strings.HasPrefix(line, "FAIL") {
			t.Errorf("shape check failed: %s", line)
		}
	}
}

func TestPaperConstantsComplete(t *testing.T) {
	for _, row := range []string{
		"WWW05/Fp-measure", "WWW05/F-measure", "WWW05/RandIndex",
		"WePS/Fp-measure", "WePS/F-measure", "WePS/RandIndex",
	} {
		vals, ok := PaperTableII[row]
		if !ok {
			t.Errorf("missing paper row %q", row)
			continue
		}
		for _, col := range tableIIColumns {
			if _, ok := vals[col]; !ok {
				t.Errorf("paper row %q missing column %q", row, col)
			}
		}
	}
	if len(RelatedWork) == 0 {
		t.Error("related-work constants missing")
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.Runs != 5 || d.TrainFraction != 0.10 || d.RegionK != 10 {
		t.Errorf("DefaultConfig = %+v", d)
	}
	q := QuickConfig()
	if q.Runs >= d.Runs {
		t.Error("QuickConfig should use fewer runs")
	}
	opts := d.options()
	if opts.TrainFraction != d.TrainFraction || opts.RegionK != d.RegionK {
		t.Error("options() does not propagate config")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Figure1(t.Context(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure1(t.Context(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Accuracy) != len(b.Accuracy) {
		t.Fatal("non-deterministic region count")
	}
	for i := range a.Accuracy {
		if a.Accuracy[i] != b.Accuracy[i] {
			t.Fatal("non-deterministic accuracies")
		}
	}
}
