package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
)

// IncrementalBatchResult is one batch of the incremental-vs-full sweep:
// the work and wall time of resolving the corpus incrementally (carrying
// the previous batch's snapshot) against resolving it from scratch, plus
// the equivalence check between the two clusterings.
type IncrementalBatchResult struct {
	// Batch is the 1-based batch number.
	Batch int
	// Docs is the corpus size after this batch arrived.
	Docs int
	// Blocks is the number of resolution blocks.
	Blocks int
	// Prepared and Reused split the blocks into re-prepared dirty ones
	// and ones reused from the previous batch's snapshot.
	Prepared int
	Reused   int
	// Incremental and Full are the wall times of the two modes.
	Incremental time.Duration
	Full        time.Duration
	// Match reports whether both modes produced identical clusters — the
	// paper-level invariant the equivalence harness pins.
	Match bool
}

// IncrementalSweep ingests the synthetic WWW'05 dataset in append-only
// batches the way a crawl delivers: the first batch carries half of every
// collection, and each later batch completes a different subset of the
// names, leaving the rest untouched — so the incremental run has clean
// blocks to reuse. After each batch the corpus is resolved twice:
// incrementally against the previous batch's snapshot, and fully from
// scratch. names caps the number of collections (≤ 0 keeps all 12);
// batches is the number of deliveries.
func IncrementalSweep(ctx context.Context, cfg Config, batches, names int) ([]IncrementalBatchResult, error) {
	if batches < 1 {
		batches = 1
	}
	d, err := corpus.WWW05Profile().Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	cols := d.Collections
	if names > 0 && names < len(cols) {
		cols = cols[:names]
	}

	opts := cfg.options()
	opts.Seed = cfg.Seed
	pl, err := pipeline.New(pipeline.Config{Options: opts})
	if err != nil {
		return nil, err
	}

	var out []IncrementalBatchResult
	var snap *pipeline.Snapshot
	for k := 0; k < batches; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := staggeredBatch(cols, k, batches)
		docs := 0
		for _, col := range batch {
			docs += len(col.Docs)
		}

		start := time.Now()
		inc, err := pl.RunIncremental(ctx, batch, snap)
		if err != nil {
			return nil, fmt.Errorf("incremental batch %d: %w", k+1, err)
		}
		incTime := time.Since(start)

		start = time.Now()
		full, err := pl.RunIncremental(ctx, batch, nil)
		if err != nil {
			return nil, fmt.Errorf("full batch %d: %w", k+1, err)
		}
		fullTime := time.Since(start)

		match := len(inc.Results) == len(full.Results)
		for i := 0; match && i < len(full.Results); i++ {
			a, b := inc.Results[i].Resolution.Labels, full.Results[i].Resolution.Labels
			if len(a) != len(b) {
				match = false
				break
			}
			for j := range a {
				if a[j] != b[j] {
					match = false
					break
				}
			}
		}

		out = append(out, IncrementalBatchResult{
			Batch:       k + 1,
			Docs:        docs,
			Blocks:      inc.Stats.Blocks,
			Prepared:    inc.Stats.Prepared,
			Reused:      inc.Stats.Reused,
			Incremental: incTime,
			Full:        fullTime,
			Match:       match,
		})
		snap = inc.Snapshot
	}
	return out, nil
}

// staggeredBatch is append-only ingestion with partial coverage per batch:
// batch 0 delivers the first half of every collection, and collection i is
// completed in batch 1+(i mod (total−1)) — so every batch after the first
// touches only a slice of the names and the last batch completes the
// corpus.
func staggeredBatch(cols []*corpus.Collection, k, total int) []*corpus.Collection {
	out := make([]*corpus.Collection, 0, len(cols))
	for i, col := range cols {
		n := (len(col.Docs) + 1) / 2
		if total < 2 || k >= 1+(i%(total-1)) {
			n = len(col.Docs)
		}
		docs := append([]corpus.Document(nil), col.Docs[:n]...)
		personas := 0
		for _, doc := range docs {
			if doc.PersonaID >= personas {
				personas = doc.PersonaID + 1
			}
		}
		out = append(out, &corpus.Collection{Name: col.Name, Docs: docs, NumPersonas: personas})
	}
	return out
}

// RenderIncrementalSweep formats the sweep as a text table.
func RenderIncrementalSweep(rows []IncrementalBatchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "incremental vs full re-resolution (WWW'05 synthetic, append-only batches)\n")
	fmt.Fprintf(&b, "%-6s %6s %7s %9s %7s %12s %12s %8s\n",
		"batch", "docs", "blocks", "prepared", "reused", "incremental", "full", "equal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %6d %7d %9d %7d %12v %12v %8v\n",
			r.Batch, r.Docs, r.Blocks, r.Prepared, r.Reused,
			r.Incremental.Round(time.Millisecond), r.Full.Round(time.Millisecond), r.Match)
	}
	return b.String()
}
