package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/regions"
)

// Figure1Result is the data behind Figure 1: the per-region accuracy of
// link existence for similarity function F3 on the "cohen" collection of
// the WWW'05 dataset, with k-means regions.
type Figure1Result struct {
	// FuncID and Name identify the function and collection shown.
	FuncID, Name string
	// Centers are the fitted k-means region centers (region means).
	Centers []float64
	// Boundaries are the region upper boundaries (the dotted lines).
	Boundaries []float64
	// Accuracy is the estimated link accuracy per region.
	Accuracy []float64
	// Support is the training-pair count per region.
	Support []int
	// Variation is max−min accuracy over supported regions, the quantity
	// the paper highlights ("the accuracy values varied significantly").
	Variation float64
}

// Figure1 reproduces Figure 1: fit k-means regions to F3's training
// similarity values on the "cohen" collection and estimate per-region link
// accuracy.
func Figure1(ctx context.Context, cfg Config) (*Figure1Result, error) {
	const funcID, name = "F3", "cohen"
	d, err := corpus.WWW05Profile().Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	sub := d.Subset([]string{name})
	if len(sub.Collections) != 1 {
		return nil, fmt.Errorf("experiments: collection %q missing from WWW'05 profile", name)
	}
	pd, err := prepareDataset(ctx, cfg, sub)
	if err != nil {
		return nil, err
	}
	a, err := pd.prepared[0].Run(cfg.Seed)
	if err != nil {
		return nil, err
	}
	dg, err := a.Graph(funcID, core.KMeansCriterion)
	if err != nil {
		return nil, err
	}
	est := dg.Estimate
	res := &Figure1Result{
		FuncID:     funcID,
		Name:       name,
		Boundaries: est.Part.Boundaries(),
		Accuracy:   est.Accuracy,
		Support:    est.Support,
		Variation:  est.Variation(),
	}
	if km, ok := est.Part.(*regions.KMeans1D); ok {
		res.Centers = km.Centers
	}
	return res, nil
}

// Render draws the figure as a text bar chart: one row per region with its
// value range and accuracy bar, matching the structure of the paper's plot.
func (f *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: accuracy of link existence per region (%s, name %q, k-means regions)\n", f.FuncID, f.Name)
	lo := 0.0
	for r := range f.Accuracy {
		hi := f.Boundaries[r]
		bar := strings.Repeat("#", int(f.Accuracy[r]*40+0.5))
		fmt.Fprintf(&b, "  region %2d [%.3f, %.3f)  acc=%.3f  n=%-4d %s\n",
			r, lo, hi, f.Accuracy[r], f.Support[r], bar)
		lo = hi
	}
	fmt.Fprintf(&b, "  accuracy variation across supported regions: %.3f\n", f.Variation)
	return b.String()
}
