package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/eval"
)

// FunctionFigure holds the data of Figure 2 (WWW'05) or Figure 3 (WePS):
// Fp-measure, F-measure and Rand index for each individual similarity
// function (threshold criterion) plus the combined technique (the final
// black column).
type FunctionFigure struct {
	// Title labels the figure.
	Title string
	// Table rows are F1..F10 and "Combined"; columns Fp, F, Rand.
	Table *eval.Table
}

// figureColumns are the three metrics the figures plot.
var figureColumns = []string{"Fp-measure", "F-measure", "RandIndex"}

// Figure2 reproduces Figure 2: per-function and combined performance on
// the whole WWW'05 dataset.
func Figure2(ctx context.Context, cfg Config) (*FunctionFigure, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return functionFigure(ctx, cfg, pd, "Figure 2: WWW results")
}

// Figure3 reproduces Figure 3: per-function and combined performance on
// the WePS dataset (10 ACL-style names).
func Figure3(ctx context.Context, cfg Config) (*FunctionFigure, error) {
	pd, err := wepsACL(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return functionFigure(ctx, cfg, pd, "Figure 3: WEPS results")
}

func functionFigure(ctx context.Context, cfg Config, pd *preparedDataset, title string) (*FunctionFigure, error) {
	table := eval.NewTable(title, figureColumns...)
	for _, id := range allFunctionIDs {
		r, err := pd.averageStrategy(ctx, cfg, singleFunction(id))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		table.AddRow(id, resultCells(r))
	}
	combined, err := pd.averageStrategy(ctx, cfg, bestAnyCriterion(allFunctionIDs))
	if err != nil {
		return nil, fmt.Errorf("experiments: combined: %w", err)
	}
	table.AddRow("Combined", resultCells(combined))
	return &FunctionFigure{Title: title, Table: table}, nil
}

func resultCells(r eval.Result) map[string]float64 {
	return map[string]float64{
		"Fp-measure": r.Fp,
		"F-measure":  r.F,
		"RandIndex":  r.Rand,
	}
}

// CombinedWins reports, per metric, whether the combined column beats every
// individual function — the headline claim the figures make.
func (f *FunctionFigure) CombinedWins() map[string]bool {
	out := make(map[string]bool, len(figureColumns))
	for _, col := range figureColumns {
		combined, ok := f.Table.Get("Combined", col)
		if !ok {
			continue
		}
		wins := true
		for _, id := range allFunctionIDs {
			if v, ok := f.Table.Get(id, col); ok && v > combined {
				wins = false
				break
			}
		}
		out[col] = wins
	}
	return out
}

// Render draws the figure as grouped text bars, one group per function.
func (f *FunctionFigure) Render() string {
	var b strings.Builder
	b.WriteString(f.Title + "\n")
	for _, label := range f.Table.RowLabels() {
		fmt.Fprintf(&b, "  %-9s", label)
		for _, col := range figureColumns {
			v, _ := f.Table.Get(label, col)
			fmt.Fprintf(&b, " %s=%.4f", strings.TrimSuffix(col, "-measure"), v)
		}
		v, _ := f.Table.Get(label, "Fp-measure")
		fmt.Fprintf(&b, "  |%s\n", strings.Repeat("#", int(v*40+0.5)))
	}
	return b.String()
}
