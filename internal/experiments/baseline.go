package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/simfn"
	"repro/internal/swoosh"
)

// BaselineComparison pits the paper's framework (C10) against the R-Swoosh
// generic entity-resolution baseline (reference [7]) on the WWW'05 dataset.
// R-Swoosh's match predicate thresholds are trained per block from the same
// training sample the framework sees (term-cosine and concept-cosine
// thresholds via the framework's threshold learner; two shared entity
// mentions as the entity path), so the comparison is information-fair.
func BaselineComparison(ctx context.Context, cfg Config) ([]AblationResult, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}

	framework, err := pd.averageStrategy(ctx, cfg, bestAnyCriterion(simfn.SubsetI10))
	if err != nil {
		return nil, fmt.Errorf("experiments: framework: %w", err)
	}

	// R-Swoosh plugs into the pipeline's combine + cluster stage like any
	// other strategy: it reads the analysis' training sample for its
	// thresholds and resolves the prepared block directly.
	baseline, err := pd.averageStrategy(ctx, cfg, func(a *core.Analysis) (*core.Resolution, error) {
		labels, err := rswooshResolve(a.Prepared, a)
		if err != nil {
			return nil, err
		}
		return &core.Resolution{Labels: labels, Source: "rswoosh"}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline: %w", err)
	}

	return []AblationResult{
		{Name: "framework-C10", Score: framework},
		{Name: "rswoosh-baseline", Score: baseline},
	}, nil
}

// rswooshResolve runs R-Swoosh over a prepared block with thresholds
// trained from the analysis' training sample.
func rswooshResolve(p *core.Prepared, a *core.Analysis) ([]int, error) {
	termTh := trainedThreshold(p, a, "F8")
	conceptTh := trainedThreshold(p, a, "F1")
	records := swoosh.FromBlock(p.Block)
	resolved, err := swoosh.RSwoosh(records, swoosh.ThresholdMatch(termTh, conceptTh, 2))
	if err != nil {
		return nil, err
	}
	return swoosh.Labels(resolved, len(p.Block.Docs)), nil
}

// trainedThreshold learns a link threshold for one similarity function from
// the analysis' training pairs.
func trainedThreshold(p *core.Prepared, a *core.Analysis, funcID string) float64 {
	m := p.Matrices[funcID]
	if m == nil {
		return 0.5
	}
	return core.LearnThreshold(a.Train.Values(m), a.Train.Links)
}
