package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simfn"
	"repro/internal/stats"
)

// tableIIIColumns are the paper's Table III columns: every function's
// per-name Fp plus the C10 and W combinations.
var tableIIIColumns = append(append([]string{}, simfn.SubsetI10...), "C10", "W")

// TableIII reproduces Table III: the Fp-measure achieved for each
// individual WWW'05 name by each individual function (threshold criterion),
// by the best-criterion combination (C10) and by the weighted average (W),
// averaged over cfg.Runs training draws.
func TableIII(ctx context.Context, cfg Config) (*eval.Table, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	table := eval.NewTable("Table III: Fp measure for each name in WWW'05", tableIIIColumns...)

	for i, p := range pd.prepared {
		name := pd.dataset.Collections[i].Name
		truth := pd.dataset.Collections[i].GroundTruth()
		cells := make(map[string]float64, len(tableIIIColumns))

		for run := 0; run < cfg.Runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a, err := p.Run(stats.SplitSeedN(cfg.Seed, run*1000+i))
			if err != nil {
				return nil, err
			}
			for _, id := range simfn.SubsetI10 {
				res, err := a.SingleFunction(id, core.ThresholdCriterion)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s: %w", name, id, err)
				}
				fp, err := eval.FpMeasure(res.Labels, truth)
				if err != nil {
					return nil, err
				}
				cells[id] += fp
			}
			c10, err := a.BestAnyCriterion()
			if err != nil {
				return nil, err
			}
			fp, err := eval.FpMeasure(c10.Labels, truth)
			if err != nil {
				return nil, err
			}
			cells["C10"] += fp

			w, err := a.WeightedAverage()
			if err != nil {
				return nil, err
			}
			fp, err = eval.FpMeasure(w.Labels, truth)
			if err != nil {
				return nil, err
			}
			cells["W"] += fp
		}
		for k := range cells {
			cells[k] /= float64(cfg.Runs)
		}
		table.AddRow(name, cells)
	}
	return table, nil
}

// TableIIIShapeChecks verifies the qualitative Table III claims: different
// names are won by different functions (at least 3 distinct winners across
// the 12 names), and C10 matches or beats the best individual function for
// a majority of names.
func TableIIIShapeChecks(table *eval.Table) []string {
	const tol = 0.02
	var out []string
	check := func(label string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, label))
	}

	winners := table.ArgBest("C10", "W")
	distinct := make(map[string]bool)
	for _, w := range winners {
		distinct[w] = true
	}
	check(fmt.Sprintf("distinct per-name winning functions: %d (want >= 3)", len(distinct)),
		len(distinct) >= 3)

	c10AtLeastBest := 0
	for _, name := range table.RowLabels() {
		best := -1.0
		for _, id := range simfn.SubsetI10 {
			if v, ok := table.Get(name, id); ok && v > best {
				best = v
			}
		}
		if c10, ok := table.Get(name, "C10"); ok && c10 >= best-tol {
			c10AtLeastBest++
		}
	}
	check(fmt.Sprintf("C10 >= best individual function for %d/%d names (want majority)",
		c10AtLeastBest, len(table.RowLabels())),
		c10AtLeastBest*2 >= len(table.RowLabels()))
	return out
}
