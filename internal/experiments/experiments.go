// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) over the synthetic datasets: Figure 1 (per-region
// accuracy of a similarity function), Figures 2 and 3 (per-function vs
// combined performance on WWW'05 and WePS), Table II (threshold-only vs
// accuracy-criterion vs weighted-average combinations) and Table III
// (per-name Fp of every function). Both cmd/experiments and the benchmark
// suite call into this package.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/simfn"
	"repro/internal/stats"
)

// Config parameterizes an experiment run, mirroring the paper's setup.
type Config struct {
	// Seed drives dataset generation and training-sample draws.
	Seed int64
	// Runs is the number of independent training draws averaged (the
	// paper repeats each experiment for 5 runs).
	Runs int
	// TrainFraction is the labeled fraction (the paper uses 10%).
	TrainFraction float64
	// RegionK is the number of accuracy-estimation regions.
	RegionK int
}

// DefaultConfig is the paper's setup: 5 runs, 10% training, 10 regions.
func DefaultConfig() Config {
	return Config{Seed: 2010, Runs: 5, TrainFraction: 0.10, RegionK: 10}
}

// QuickConfig is a reduced setup for tests: fewer runs over the same data.
func QuickConfig() Config {
	return Config{Seed: 2010, Runs: 2, TrainFraction: 0.10, RegionK: 10}
}

func (c Config) options() core.Options {
	opts := core.DefaultOptions()
	opts.TrainFraction = c.TrainFraction
	opts.RegionK = c.RegionK
	return opts
}

// runSeeds derives the training seed of (run, block), matching the paper's
// independent draws across runs and names.
func (c Config) runSeeds() func(run, block int) int64 {
	seed := c.Seed
	return func(run, block int) int64 { return stats.SplitSeedN(seed, run*1000+block) }
}

// preparedDataset caches the expensive per-collection preparation so the
// run loop only redraws training samples.
type preparedDataset struct {
	dataset  *corpus.Dataset
	prepared []*core.Prepared
	truths   [][]int
}

func prepareDataset(ctx context.Context, cfg Config, d *corpus.Dataset) (*preparedDataset, error) {
	pl, err := pipeline.New(pipeline.Config{Options: cfg.options()})
	if err != nil {
		return nil, err
	}
	// The pipeline's default exact-name block stage keeps each per-name
	// collection as one block and prepares the independent blocks
	// concurrently, so the Figure 2/3 and Table II/III drivers saturate
	// the machine.
	blocks, prepared, err := pl.Prepare(ctx, d.Collections)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	truths := make([][]int, len(blocks))
	for i, b := range blocks {
		truths[i] = b.GroundTruth()
	}
	return &preparedDataset{dataset: d, prepared: prepared, truths: truths}, nil
}

// www05 generates and prepares the synthetic WWW'05 dataset.
func www05(ctx context.Context, cfg Config) (*preparedDataset, error) {
	d, err := corpus.WWW05Profile().Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return prepareDataset(ctx, cfg, d)
}

// wepsACL generates the synthetic WePS dataset and keeps the 10 reported
// ACL-style names.
func wepsACL(ctx context.Context, cfg Config) (*preparedDataset, error) {
	d, err := corpus.WePSProfile().Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return prepareDataset(ctx, cfg, d.Subset(corpus.WePSACLNames))
}

// strategy evaluates one resolution strategy on one analysis — the
// pipeline's combine + cluster stage.
type strategy = pipeline.Strategy

// averageStrategy runs a strategy over all collections and runs, returning
// the macro-averaged metrics.
func (pd *preparedDataset) averageStrategy(ctx context.Context, cfg Config, s strategy) (eval.Result, error) {
	return pipeline.AverageRuns(ctx, pd.prepared, pd.truths, cfg.Runs, cfg.runSeeds(), cfg.options(), s)
}

// Strategy constructors shared by Table II and the figures.

func bestThreshold(ids []string) strategy {
	return func(a *core.Analysis) (*core.Resolution, error) {
		return a.BestOver(ids, core.ThresholdCriterion)
	}
}

func bestAnyCriterion(ids []string) strategy {
	return func(a *core.Analysis) (*core.Resolution, error) {
		return a.BestOver(ids, core.AllCriteria...)
	}
}

func weightedAverage(ids []string) strategy {
	return func(a *core.Analysis) (*core.Resolution, error) {
		return a.WeightedAverageOver(ids)
	}
}

func singleFunction(id string) strategy {
	return func(a *core.Analysis) (*core.Resolution, error) {
		return a.SingleFunction(id, core.ThresholdCriterion)
	}
}

func majorityVote() strategy {
	return func(a *core.Analysis) (*core.Resolution, error) {
		return a.MajorityVote()
	}
}

// allFunctionIDs is the full Table I set.
var allFunctionIDs = simfn.SubsetI10
