package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/pipeline"
)

// The ANN recall sweep quantifies what the approximate candidate index
// trades against the exact canopy pass it replaces, on the synthetic
// WWW'05 dataset with per-document extracted-name keys (the richest key
// function, so documents carry distinct vectors and the graph actually
// has to search). For each efSearch setting it reports the pair-level
// candidate recall of the ANN blocks against the exact canopy blocks,
// the end-to-end Fp of resolving the ANN blocks, and the Block-stage
// wall time — next to the exact baseline's Fp and wall time. Both sides
// run the identical downstream pipeline with the same training seed, so
// any Fp difference is attributable to the Block stage alone.

// ANNRecallPoint is one efSearch setting's measurement.
type ANNRecallPoint struct {
	// EfSearch is the neighbor-query beam width (the recall knob).
	EfSearch int
	// Recall is the fraction of exact-canopy co-blocked pairs the ANN
	// blocks preserve.
	Recall float64
	// Blocks is the number of candidate-connected components.
	Blocks int
	// Fp is the end-to-end paper F-measure of resolving the ANN blocks.
	Fp float64
	// BlockMillis is the Block-stage wall time: one full insertion pass
	// plus block assembly.
	BlockMillis float64
}

// ANNRecallReport is the sweep result plus the exact-canopy baseline.
type ANNRecallReport struct {
	// Docs is the corpus size.
	Docs int
	// ExactBlocks, ExactFp and ExactMillis are the exact canopy pass's
	// block count, end-to-end Fp, and Block-stage wall time.
	ExactBlocks int
	ExactFp     float64
	ExactMillis float64
	// Points are the ANN measurements, one per efSearch setting.
	Points []ANNRecallPoint
}

// ANNRecallSweep runs the sweep over the given efSearch settings.
func ANNRecallSweep(ctx context.Context, cfg Config, efs []int) (*ANNRecallReport, error) {
	d, err := corpus.WWW05Profile().Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	cols := d.Collections
	keys, err := pipeline.ParseKeys("names")
	if err != nil {
		return nil, err
	}
	// A tighter canopy than the serving default (loose 0.3 glues the
	// whole extracted-name corpus into one block, which measures
	// nothing): at loose 0.55 the corpus separates into many canopies,
	// so recall has pairs to lose and the sweep has something to show.
	scheme := blocking.Canopy{Loose: 0.55, Tight: 0.9}
	var approx blocking.ApproxScheme = scheme

	// Global ground truth over the flattened corpus: personas are
	// per-collection, so each collection's labels get their own range.
	offset := make([]int, len(cols))
	total := 0
	for ci, col := range cols {
		offset[ci] = total
		total += len(col.Docs)
	}
	flat := func(ref pipeline.DocRef) int { return offset[ref.Col] + ref.Doc }
	truth := make([]int, total)
	next := 0
	for ci, col := range cols {
		gt := col.GroundTruth()
		high := 0
		for di, label := range gt {
			truth[offset[ci]+di] = next + label
			if label > high {
				high = label
			}
		}
		next += high + 1
	}

	flatten := func(members [][]pipeline.DocRef) [][]int {
		out := make([][]int, len(members))
		for i, mem := range members {
			out[i] = make([]int, len(mem))
			for j, ref := range mem {
				out[i][j] = flat(ref)
			}
		}
		return out
	}

	// endToEnd resolves the corpus through the given blocker and scores
	// the resulting global clustering: per-block labels become globally
	// distinct cluster ids through the block's membership.
	endToEnd := func(blocker pipeline.MembershipBlocker, members [][]pipeline.DocRef) (float64, error) {
		opts := cfg.options()
		opts.Seed = cfg.Seed
		pl, err := pipeline.New(pipeline.Config{Blocker: blocker, Options: opts})
		if err != nil {
			return 0, err
		}
		results, err := pl.Run(ctx, cols)
		if err != nil {
			return 0, err
		}
		if len(results) != len(members) {
			return 0, fmt.Errorf("experiments: %d resolved blocks but %d membership blocks", len(results), len(members))
		}
		pred := make([]int, total)
		nextCluster := 0
		for i, res := range results {
			labels := res.Resolution.Labels
			if len(labels) != len(members[i]) {
				return 0, fmt.Errorf("experiments: block %d has %d labels for %d members", i, len(labels), len(members[i]))
			}
			local := map[int]int{}
			for j, label := range labels {
				g, ok := local[label]
				if !ok {
					g = nextCluster
					nextCluster++
					local[label] = g
				}
				pred[flat(members[i][j])] = g
			}
		}
		return eval.FpMeasure(pred, truth)
	}

	rep := &ANNRecallReport{Docs: total}

	exact := pipeline.SchemeBlocker{Scheme: scheme, Keys: keys}
	start := time.Now()
	_, exactMembers, err := exact.BlockMembership(ctx, cols)
	if err != nil {
		return nil, err
	}
	rep.ExactMillis = float64(time.Since(start).Microseconds()) / 1000
	rep.ExactBlocks = len(exactMembers)
	if rep.ExactFp, err = endToEnd(exact, exactMembers); err != nil {
		return nil, err
	}
	ref := flatten(exactMembers)

	for _, ef := range efs {
		ab, err := pipeline.NewANNBlocker(approx, keys, pipeline.ANNOptions{EfSearch: ef})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, annMembers, err := ab.BlockMembership(ctx, cols)
		if err != nil {
			return nil, err
		}
		point := ANNRecallPoint{
			EfSearch:    ef,
			BlockMillis: float64(time.Since(start).Microseconds()) / 1000,
			Blocks:      len(annMembers),
			Recall:      eval.CandidateRecall(ref, flatten(annMembers)),
		}
		// The graph is warm now, so the pipeline's own Block call inside
		// Run pays only assembly — the steady-state serving shape.
		if point.Fp, err = endToEnd(ab, annMembers); err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, point)
	}
	return rep, nil
}

// Render formats the sweep as a text table.
func (r *ANNRecallReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ANN candidate index vs exact canopy (WWW'05, names keys, %d docs)\n", r.Docs)
	fmt.Fprintf(&b, "  %-10s  %-8s  %-8s  %-8s  %s\n", "config", "recall", "blocks", "Fp", "block ms")
	fmt.Fprintf(&b, "  %-10s  %-8s  %-8d  %-8.4f  %.1f\n", "exact", "1.0000", r.ExactBlocks, r.ExactFp, r.ExactMillis)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-10s  %-8.4f  %-8d  %-8.4f  %.1f\n",
			fmt.Sprintf("ef=%d", p.EfSearch), p.Recall, p.Blocks, p.Fp, p.BlockMillis)
	}
	return b.String()
}
