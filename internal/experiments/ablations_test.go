package experiments

import (
	"strings"
	"testing"
)

func ablationTestCfg() Config {
	return Config{Seed: 2010, Runs: 1, TrainFraction: 0.10, RegionK: 10}
}

func checkResults(t *testing.T, res []AblationResult, wantNames []string) {
	t.Helper()
	if len(res) != len(wantNames) {
		t.Fatalf("results = %d, want %d", len(res), len(wantNames))
	}
	for i, r := range res {
		if r.Name != wantNames[i] {
			t.Errorf("result %d = %q, want %q", i, r.Name, wantNames[i])
		}
		for _, v := range []float64{r.Score.Fp, r.Score.F, r.Score.Rand} {
			if v < 0 || v > 1 {
				t.Errorf("%s score out of range: %+v", r.Name, r.Score)
			}
		}
	}
}

func TestAblationRegionScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	res, err := AblationRegionScheme(t.Context(), ablationTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, res, []string{
		"threshold-only", "threshold+equal-bins", "threshold+kmeans", "all-criteria",
	})
	// The richest pool should not lose to the threshold-only pool by much.
	if res[3].Score.Fp < res[0].Score.Fp-0.03 {
		t.Errorf("all-criteria (%v) clearly below threshold-only (%v)",
			res[3].Score.Fp, res[0].Score.Fp)
	}
}

func TestAblationRegionK(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	res, err := AblationRegionK(t.Context(), ablationTestCfg(), []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, res, []string{"k=5", "k=10"})
}

func TestAblationClusteringAndCombination(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	res, err := AblationClustering(t.Context(), ablationTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, res, []string{"transitive-closure", "correlation-clustering"})

	res, err = AblationCombination(t.Context(), ablationTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, res, []string{"best-graph", "weighted-average", "majority-vote"})
}

func TestAblationTrainFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset experiment")
	}
	res, err := AblationTrainFraction(t.Context(), ablationTestCfg(), []float64{0.05, 0.20})
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, res, []string{"train=5%", "train=20%"})
	// More labels must not hurt much.
	if res[1].Score.Fp < res[0].Score.Fp-0.05 {
		t.Errorf("train=20%% (%v) clearly below train=5%% (%v)",
			res[1].Score.Fp, res[0].Score.Fp)
	}
}

func TestRenderAblation(t *testing.T) {
	s := RenderAblation("title", []AblationResult{{Name: "x"}})
	if !strings.Contains(s, "title") || !strings.Contains(s, "x") {
		t.Errorf("render = %q", s)
	}
}
