package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/simfn"
)

// Ablations quantify the design choices DESIGN.md calls out: the region
// scheme, the region count k, the final clustering step, the training
// fraction, and the combination method. Each ablation runs the full
// pipeline on the WWW'05 dataset with exactly one knob varied.

// AblationResult is one configuration's macro-averaged score.
type AblationResult struct {
	// Name labels the configuration ("k=5", "correlation-clustering", …).
	Name string
	// Score is the macro-averaged dataset result.
	Score eval.Result
}

// averageWith runs a strategy over all collections and runs using explicit
// per-run options (the ablation hook).
func (pd *preparedDataset) averageWith(ctx context.Context, cfg Config, opts core.Options, s strategy) (eval.Result, error) {
	return pipeline.AverageRuns(ctx, pd.prepared, pd.truths, cfg.Runs, cfg.runSeeds(), opts, s)
}

// AblationRegionScheme compares decision criteria pools: threshold only,
// threshold+equal-width bins, threshold+k-means, and all three (the
// system's default) — isolating what each region scheme contributes over
// the plain threshold.
func AblationRegionScheme(ctx context.Context, cfg Config) ([]AblationResult, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pools := []struct {
		name     string
		criteria []core.CriterionKind
	}{
		{"threshold-only", []core.CriterionKind{core.ThresholdCriterion}},
		{"threshold+equal-bins", []core.CriterionKind{core.ThresholdCriterion, core.EqualBinsCriterion}},
		{"threshold+kmeans", []core.CriterionKind{core.ThresholdCriterion, core.KMeansCriterion}},
		{"all-criteria", core.AllCriteria},
	}
	var out []AblationResult
	for _, pool := range pools {
		crit := pool.criteria
		score, err := pd.averageStrategy(ctx, cfg, func(a *core.Analysis) (*core.Resolution, error) {
			return a.BestOver(simfn.SubsetI10, crit...)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", pool.name, err)
		}
		out = append(out, AblationResult{Name: pool.name, Score: score})
	}
	return out, nil
}

// AblationRegionK varies the region count k for both region schemes.
func AblationRegionK(ctx context.Context, cfg Config, ks []int) ([]AblationResult, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, k := range ks {
		opts := cfg.options()
		opts.RegionK = k
		score, err := pd.averageWith(ctx, cfg, opts, bestAnyCriterion(simfn.SubsetI10))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation k=%d: %w", k, err)
		}
		out = append(out, AblationResult{Name: fmt.Sprintf("k=%d", k), Score: score})
	}
	return out, nil
}

// AblationClustering compares transitive closure against correlation
// clustering as Algorithm 1's final step.
func AblationClustering(ctx context.Context, cfg Config) ([]AblationResult, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, m := range []core.ClusteringMethod{core.TransitiveClosure, core.CorrelationClustering} {
		opts := cfg.options()
		opts.Clustering = m
		score, err := pd.averageWith(ctx, cfg, opts, bestAnyCriterion(simfn.SubsetI10))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", m, err)
		}
		out = append(out, AblationResult{Name: m.String(), Score: score})
	}
	return out, nil
}

// AblationTrainFraction varies the labeled fraction (the paper fixes 10%).
func AblationTrainFraction(ctx context.Context, cfg Config, fractions []float64) ([]AblationResult, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, f := range fractions {
		opts := cfg.options()
		opts.TrainFraction = f
		score, err := pd.averageWith(ctx, cfg, opts, bestAnyCriterion(simfn.SubsetI10))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation train=%v: %w", f, err)
		}
		out = append(out, AblationResult{Name: fmt.Sprintf("train=%.0f%%", f*100), Score: score})
	}
	return out, nil
}

// AblationCombination compares the three combination methods of Section
// IV-B: best-graph selection (the paper's winner), the accuracy-weighted
// average, and plain majority voting.
func AblationCombination(ctx context.Context, cfg Config) ([]AblationResult, error) {
	pd, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	methods := []struct {
		name string
		s    strategy
	}{
		{"best-graph", bestAnyCriterion(simfn.SubsetI10)},
		{"weighted-average", weightedAverage(simfn.SubsetI10)},
		{"majority-vote", majorityVote()},
	}
	var out []AblationResult
	for _, m := range methods {
		score, err := pd.averageStrategy(ctx, cfg, m.s)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", m.name, err)
		}
		out = append(out, AblationResult{Name: m.name, Score: score})
	}
	return out, nil
}

// RenderAblation formats ablation results as a table fragment.
func RenderAblation(title string, results []AblationResult) string {
	s := title + "\n"
	for _, r := range results {
		s += fmt.Sprintf("  %-24s Fp=%.4f  F=%.4f  Rand=%.4f\n",
			r.Name, r.Score.Fp, r.Score.F, r.Score.Rand)
	}
	return s
}
