package experiments

import (
	"context"
	"fmt"

	"repro/internal/eval"
	"repro/internal/simfn"
)

// Table II compares, on both datasets and three metrics, the best
// threshold-only graphs over growing function subsets (I4, I7, I10), the
// best graph over all decision criteria (C4, C7, C10) and the weighted-
// average combination (W), against the numbers reported in the literature.

// tableIIColumns is the paper's column order.
var tableIIColumns = []string{"I4", "I7", "I10", "C4", "C7", "C10", "W"}

// PaperTableII records the values the paper reports (Table II), used by
// EXPERIMENTS.md and the harness output for side-by-side comparison.
var PaperTableII = map[string]map[string]float64{
	"WWW05/Fp-measure": {"I4": 0.8128, "I7": 0.8211, "I10": 0.8232, "C4": 0.8537, "C7": 0.8732, "C10": 0.8774, "W": 0.8371},
	"WWW05/F-measure":  {"I4": 0.7654, "I7": 0.7773, "I10": 0.7822, "C4": 0.8338, "C7": 0.8376, "C10": 0.8438, "W": 0.8168},
	"WWW05/RandIndex":  {"I4": 0.8018, "I7": 0.8109, "I10": 0.8326, "C4": 0.8747, "C7": 0.8814, "C10": 0.8886, "W": 0.8531},
	"WePS/Fp-measure":  {"I4": 0.7270, "I7": 0.7388, "I10": 0.7682, "C4": 0.7560, "C7": 0.7659, "C10": 0.7880, "W": 0.7785},
	"WePS/F-measure":   {"I4": 0.7042, "I7": 0.7042, "I10": 0.7042, "C4": 0.7127, "C7": 0.7231, "C10": 0.7476, "W": 0.7190},
	"WePS/RandIndex":   {"I4": 0.7102, "I7": 0.7102, "I10": 0.7139, "C4": 0.7492, "C7": 0.7531, "C10": 0.7675, "W": 0.7290},
}

// RelatedWork reproduces the paper's literature-comparison cells.
var RelatedWork = map[string]string{
	"WWW05/Fp-measure": "0.864 [20], 0.9000 [19]",
	"WWW05/F-measure":  "0.8000 [17], 0.8 [19]",
	"WePS/Fp-measure":  "0.791 [20], WePS: 0.7800",
}

// TableII reproduces Table II on both synthetic datasets. Rows are keyed
// "dataset/metric" ("WWW05/Fp-measure", …) exactly matching PaperTableII.
func TableII(ctx context.Context, cfg Config) (*eval.Table, error) {
	table := eval.NewTable("Table II: comparison of results", tableIIColumns...)

	www, err := www05(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := tableIIRows(ctx, cfg, table, www, "WWW05"); err != nil {
		return nil, err
	}
	weps, err := wepsACL(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := tableIIRows(ctx, cfg, table, weps, "WePS"); err != nil {
		return nil, err
	}
	return table, nil
}

func tableIIRows(ctx context.Context, cfg Config, table *eval.Table, pd *preparedDataset, dataset string) error {
	type col struct {
		name string
		s    strategy
	}
	cols := []col{
		{"I4", bestThreshold(simfn.SubsetI4)},
		{"I7", bestThreshold(simfn.SubsetI7)},
		{"I10", bestThreshold(simfn.SubsetI10)},
		{"C4", bestAnyCriterion(simfn.SubsetI4)},
		{"C7", bestAnyCriterion(simfn.SubsetI7)},
		{"C10", bestAnyCriterion(simfn.SubsetI10)},
		{"W", weightedAverage(simfn.SubsetI10)},
	}
	// rows[metric][column] accumulated per strategy.
	rows := map[string]map[string]float64{
		"Fp-measure": {}, "F-measure": {}, "RandIndex": {},
	}
	for _, c := range cols {
		r, err := pd.averageStrategy(ctx, cfg, c.s)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", dataset, c.name, err)
		}
		rows["Fp-measure"][c.name] = r.Fp
		rows["F-measure"][c.name] = r.F
		rows["RandIndex"][c.name] = r.Rand
	}
	for _, metric := range []string{"Fp-measure", "F-measure", "RandIndex"} {
		table.AddRow(dataset+"/"+metric, rows[metric])
	}
	return nil
}

// TableIIShapeChecks verifies the qualitative claims of Table II on a
// computed table and returns a report line per check: more functions help
// (I4 ≤ I7 ≤ I10, C4 ≤ C7 ≤ C10), accuracy-aware criteria beat thresholds
// (Ck > Ik), and WWW'05 outscores WePS. A small tolerance absorbs run
// noise.
func TableIIShapeChecks(table *eval.Table) []string {
	const tol = 0.01
	var out []string
	check := func(label string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("%s  %s", status, label))
	}
	get := func(row, col string) float64 {
		v, _ := table.Get(row, col)
		return v
	}
	for _, row := range table.RowLabels() {
		check(fmt.Sprintf("%s: I4 <= I7 <= I10 (monotone functions)", row),
			get(row, "I4") <= get(row, "I7")+tol && get(row, "I7") <= get(row, "I10")+tol)
		check(fmt.Sprintf("%s: C4 <= C7 <= C10 (monotone functions)", row),
			get(row, "C4") <= get(row, "C7")+tol && get(row, "C7") <= get(row, "C10")+tol)
		check(fmt.Sprintf("%s: C beats I per subset (accuracy regions help)", row),
			get(row, "C4") >= get(row, "I4")-tol &&
				get(row, "C7") >= get(row, "I7")-tol &&
				get(row, "C10") >= get(row, "I10")-tol)
	}
	// The cross-dataset ordering is checked on Fp and F only: the synthetic
	// WePS profile is more fragmented than real WePS-2 (10-70 entities per
	// 150 pages), and the Rand index of any reasonable clustering on such
	// blocks is dominated by the overwhelming majority of negative pairs —
	// a known deviation documented in EXPERIMENTS.md.
	for _, metric := range []string{"Fp-measure", "F-measure"} {
		check(fmt.Sprintf("WWW05 > WePS on %s (harder dataset scores lower)", metric),
			get("WWW05/"+metric, "C10") > get("WePS/"+metric, "C10")-tol)
	}
	return out
}
