// Command benchjson measures the three numbers the project tracks across
// releases — ingest-plus-blocking throughput, incremental (delta) resolve
// latency, and read-path lookup throughput — and writes them as one JSON
// object. The committed BENCH_v7.json at the repo root is this command's
// output on the reference machine; CI re-runs it and fails on a >30%
// regression against the committed numbers.
//
//	go run ./cmd/benchjson -out BENCH_v7.json
//
// The workload is deterministic (fixed seeds), so run-to-run variance
// comes from the machine, not the data.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/serving"
	"repro/internal/store"
)

// BenchReport is the committed benchmark record. Throughputs are
// higher-is-better; the latency is lower-is-better. Lookups are measured
// single-threaded, so LookupsPerSec is per core.
type BenchReport struct {
	Schema string `json:"schema"`
	// IngestBlockDocsPerSec is documents per second through store append
	// plus incremental block-index keying.
	IngestBlockDocsPerSec float64 `json:"ingest_block_docs_per_sec"`
	// DeltaResolveMillis is the wall time of one incremental resolve after
	// a small append, with the previous snapshot warm — the O(delta) path.
	DeltaResolveMillis float64 `json:"delta_resolve_ms"`
	// LookupsPerSec is single-threaded serving-index lookups per second
	// (alternating doc-ref and entity-ID lookups).
	LookupsPerSec float64 `json:"lookups_per_sec"`
	// Shape records the workload so the numbers are comparable.
	Collections int `json:"collections"`
	Docs        int `json:"docs"`
	Lookups     int `json:"lookups"`
}

func main() {
	var (
		out     = flag.String("out", "-", "output file (- = stdout)")
		nCols   = flag.Int("collections", 24, "generated collections")
		nDocs   = flag.Int("docs", 40, "documents per collection")
		lookups = flag.Int("lookups", 2_000_000, "read-path lookups to time")
	)
	flag.Parse()

	rep, err := run(*nCols, *nDocs, *lookups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	body = append(body, '\n')
	if *out == "-" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(nCols, nDocs, lookups int) (*BenchReport, error) {
	ctx := context.Background()
	cols := make([]*corpus.Collection, nCols)
	for i := range cols {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: fmt.Sprintf("person-%03d", i), NumDocs: nDocs, NumPersonas: 4,
			Noise: 0.3, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(100 + i),
		})
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}

	// Stage 1: ingest + blocking. Append each collection as its own batch
	// and re-key the delta through the sharded incremental index after
	// every batch — the serving pipeline's write path up to the Block
	// stage.
	st := store.NewMemStore()
	blocker, err := pipeline.NewBlocker(blocking.ExactKey{}, nil, 0)
	if err != nil {
		return nil, err
	}
	ib, ok := blocker.(*pipeline.IndexBlocker)
	if !ok {
		return nil, fmt.Errorf("exact-key blocker is %T, want *pipeline.IndexBlocker", blocker)
	}
	total := 0
	ingestStart := time.Now()
	for _, col := range cols {
		if _, err := st.Append([]*corpus.Collection{col}); err != nil {
			return nil, err
		}
		snap, _ := st.Snapshot()
		if _, err := ib.BlockFingerprints(ctx, snap); err != nil {
			return nil, err
		}
		total += len(col.Docs)
	}
	ingestSecs := time.Since(ingestStart).Seconds()

	// Warm resolve: builds the incremental snapshot every delta resolve
	// reuses.
	pl, err := pipeline.New(pipeline.Config{Blocker: ib})
	if err != nil {
		return nil, err
	}
	snap, version := st.Snapshot()
	full, err := pl.RunIncremental(ctx, snap, nil)
	if err != nil {
		return nil, err
	}

	// Stage 2: delta resolve. One grown collection, everything else
	// reused.
	delta, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: cols[0].Name, NumDocs: 10, NumPersonas: 4,
		Noise: 0.3, MissingInfo: 0.2, Spurious: 0.2, Seed: 999,
	})
	if err != nil {
		return nil, err
	}
	if _, err := st.Append([]*corpus.Collection{delta}); err != nil {
		return nil, err
	}
	snap, version = st.Snapshot()
	deltaStart := time.Now()
	inc, err := pl.RunIncremental(ctx, snap, full.Snapshot)
	if err != nil {
		return nil, err
	}
	deltaMillis := float64(time.Since(deltaStart).Microseconds()) / 1000

	// Stage 3: read path. Materialize the serving index the service would
	// publish for this commit, then hammer it single-threaded.
	blocks := make([]serving.BlockResolution, len(inc.Results))
	for i, res := range inc.Results {
		blocks[i] = serving.BlockResolution{
			Fingerprint: inc.Fingerprints[i],
			Name:        res.Block.Name,
			Members:     inc.Members[i],
			Resolution:  res.Resolution,
			Score:       res.Score,
		}
	}
	x := serving.Build(nil, 1, version, "bench", snap, blocks)
	if err := x.Validate(); err != nil {
		return nil, err
	}
	ids := make([]string, 0, x.Clusters())
	for _, col := range snap {
		for pos := range col.Docs {
			if c := x.DocEntity(col.Name, pos); c != nil {
				ids = append(ids, c.ID)
			}
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("serving index answered no documents")
	}
	lookupStart := time.Now()
	hit := 0
	for i := 0; i < lookups/2; i++ {
		col := snap[i%len(snap)]
		if x.DocEntity(col.Name, i%len(col.Docs)) != nil {
			hit++
		}
		if x.Entity(ids[i%len(ids)]) != nil {
			hit++
		}
	}
	lookupSecs := time.Since(lookupStart).Seconds()
	if hit == 0 {
		return nil, fmt.Errorf("every lookup missed")
	}

	return &BenchReport{
		Schema:                "bench_v7",
		IngestBlockDocsPerSec: float64(total) / ingestSecs,
		DeltaResolveMillis:    deltaMillis,
		LookupsPerSec:         float64(2*(lookups/2)) / lookupSecs,
		Collections:           nCols,
		Docs:                  total,
		Lookups:               2 * (lookups / 2),
	}, nil
}
