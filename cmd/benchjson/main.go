// Command benchjson measures the numbers the project tracks across
// releases — ingest-plus-blocking throughput, incremental (delta) resolve
// latency, read-path lookup throughput, and the ANN candidate index's
// delta-ingest throughput with its candidate recall against exact canopy
// — and writes them as one JSON object. The committed BENCH_v10.json at
// the repo root is this command's output on the reference machine; CI
// re-runs it and fails on a >30% throughput/latency regression against
// the committed numbers, and on ANN recall below its absolute floor.
//
//	go run ./cmd/benchjson -out BENCH_v10.json
//
// The workload is deterministic (fixed seeds), so run-to-run variance
// comes from the machine, not the data.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ann"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/serving"
	"repro/internal/store"
)

// BenchReport is the committed benchmark record. Throughputs are
// higher-is-better; the latency is lower-is-better. Lookups are measured
// single-threaded, so LookupsPerSec is per core.
type BenchReport struct {
	Schema string `json:"schema"`
	// IngestBlockDocsPerSec is documents per second through store append
	// plus incremental block-index keying.
	IngestBlockDocsPerSec float64 `json:"ingest_block_docs_per_sec"`
	// DeltaResolveMillis is the wall time of one incremental resolve after
	// a small append, with the previous snapshot warm — the O(delta) path.
	DeltaResolveMillis float64 `json:"delta_resolve_ms"`
	// LookupsPerSec is single-threaded serving-index lookups per second
	// (alternating doc-ref and entity-ID lookups).
	LookupsPerSec float64 `json:"lookups_per_sec"`
	// ANNBlockDocsPerSec is documents per second through the Block stage
	// served by the ANN candidate index in the delta-ingest case: the
	// graph already holds all but the last 5 documents of each collection,
	// so each timed pass pays only the delta insertion plus block
	// assembly over the whole corpus (canopy scheme).
	ANNBlockDocsPerSec float64 `json:"ann_block_docs_per_sec"`
	// ANNRecall is the candidate pair recall of those ANN blocks against
	// the exact canopy blocks on the same corpus — the quantity the
	// sublinear index trades for throughput. Gated as an absolute floor,
	// not a relative regression.
	ANNRecall float64 `json:"ann_recall"`
	// Shape records the workload so the numbers are comparable.
	Collections int `json:"collections"`
	Docs        int `json:"docs"`
	Lookups     int `json:"lookups"`
	ANNDocs     int `json:"ann_docs"`
}

func main() {
	var (
		out      = flag.String("out", "-", "output file (- = stdout)")
		nCols    = flag.Int("collections", 24, "generated collections")
		nDocs    = flag.Int("docs", 40, "documents per collection")
		lookups  = flag.Int("lookups", 2_000_000, "read-path lookups to time")
		annCols  = flag.Int("ann-collections", 60, "collections in the ANN corpus")
		annDocs  = flag.Int("ann-docs", 50, "documents per ANN collection")
		annIters = flag.Int("ann-iters", 8, "timed ANN delta-ingest passes")
		annEf    = flag.Int("ann-ef", 0, "ANN neighbor-query beam width (0 = package default)")
	)
	flag.Parse()

	rep, err := run(*nCols, *nDocs, *lookups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := annBench(rep, *annCols, *annDocs, *annIters, *annEf); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	body = append(body, '\n')
	if *out == "-" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(nCols, nDocs, lookups int) (*BenchReport, error) {
	ctx := context.Background()
	cols := make([]*corpus.Collection, nCols)
	for i := range cols {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: fmt.Sprintf("person-%03d", i), NumDocs: nDocs, NumPersonas: 4,
			Noise: 0.3, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(100 + i),
		})
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}

	// Stage 1: ingest + blocking. Append each collection as its own batch
	// and re-key the delta through the sharded incremental index after
	// every batch — the serving pipeline's write path up to the Block
	// stage.
	st := store.NewMemStore()
	blocker, err := pipeline.NewBlocker(blocking.ExactKey{}, nil, 0)
	if err != nil {
		return nil, err
	}
	ib, ok := blocker.(*pipeline.IndexBlocker)
	if !ok {
		return nil, fmt.Errorf("exact-key blocker is %T, want *pipeline.IndexBlocker", blocker)
	}
	total := 0
	ingestStart := time.Now()
	for _, col := range cols {
		if _, err := st.Append([]*corpus.Collection{col}); err != nil {
			return nil, err
		}
		snap, _ := st.Snapshot()
		if _, err := ib.BlockFingerprints(ctx, snap); err != nil {
			return nil, err
		}
		total += len(col.Docs)
	}
	ingestSecs := time.Since(ingestStart).Seconds()

	// Warm resolve: builds the incremental snapshot every delta resolve
	// reuses.
	pl, err := pipeline.New(pipeline.Config{Blocker: ib})
	if err != nil {
		return nil, err
	}
	snap, version := st.Snapshot()
	full, err := pl.RunIncremental(ctx, snap, nil)
	if err != nil {
		return nil, err
	}

	// Stage 2: delta resolve. One grown collection, everything else
	// reused.
	delta, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: cols[0].Name, NumDocs: 10, NumPersonas: 4,
		Noise: 0.3, MissingInfo: 0.2, Spurious: 0.2, Seed: 999,
	})
	if err != nil {
		return nil, err
	}
	if _, err := st.Append([]*corpus.Collection{delta}); err != nil {
		return nil, err
	}
	snap, version = st.Snapshot()
	deltaStart := time.Now()
	inc, err := pl.RunIncremental(ctx, snap, full.Snapshot)
	if err != nil {
		return nil, err
	}
	deltaMillis := float64(time.Since(deltaStart).Microseconds()) / 1000

	// Stage 3: read path. Materialize the serving index the service would
	// publish for this commit, then hammer it single-threaded.
	blocks := make([]serving.BlockResolution, len(inc.Results))
	for i, res := range inc.Results {
		blocks[i] = serving.BlockResolution{
			Fingerprint: inc.Fingerprints[i],
			Name:        res.Block.Name,
			Members:     inc.Members[i],
			Resolution:  res.Resolution,
			Score:       res.Score,
		}
	}
	x := serving.Build(nil, 1, version, "bench", snap, blocks)
	if err := x.Validate(); err != nil {
		return nil, err
	}
	ids := make([]string, 0, x.Clusters())
	for _, col := range snap {
		for pos := range col.Docs {
			if c := x.DocEntity(col.Name, pos); c != nil {
				ids = append(ids, c.ID)
			}
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("serving index answered no documents")
	}
	lookupStart := time.Now()
	hit := 0
	for i := 0; i < lookups/2; i++ {
		col := snap[i%len(snap)]
		if x.DocEntity(col.Name, i%len(col.Docs)) != nil {
			hit++
		}
		if x.Entity(ids[i%len(ids)]) != nil {
			hit++
		}
	}
	lookupSecs := time.Since(lookupStart).Seconds()
	if hit == 0 {
		return nil, fmt.Errorf("every lookup missed")
	}

	return &BenchReport{
		Schema:                "bench_v10",
		IngestBlockDocsPerSec: float64(total) / ingestSecs,
		DeltaResolveMillis:    deltaMillis,
		LookupsPerSec:         float64(2*(lookups/2)) / lookupSecs,
		Collections:           nCols,
		Docs:                  total,
		Lookups:               2 * (lookups / 2),
	}, nil
}

// annCorpus builds the ANN workload: name collections with token overlap
// across collection names (shared given names and surnames, occasional
// middle initials), a "base" prefix holding all but the last 5 documents
// of each, and the full union one ingest batch later. It mirrors the
// corpus of the pipeline ANN benchmarks so the committed numbers and
// `go test -bench` agree on the workload family.
func annCorpus(nCols, nDocs int) (base, full []*corpus.Collection, docs int, err error) {
	surnames := []string{"smith", "rivera", "cohen", "tanaka", "okafor", "larsen"}
	given := []string{"john", "maria", "wei", "amara", "erik", "fatima", "david", "yuki"}
	for i := 0; i < nCols; i++ {
		name := fmt.Sprintf("%s %s", given[i%len(given)], surnames[i%len(surnames)])
		if i%3 == 0 {
			name = fmt.Sprintf("%s %c %s", given[i%len(given)], 'a'+rune(i%26), surnames[i%len(surnames)])
		}
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: name, NumDocs: nDocs, NumPersonas: 3,
			Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(7000 + i),
		})
		if err != nil {
			return nil, nil, 0, err
		}
		full = append(full, col)
		base = append(base, &corpus.Collection{
			Name: col.Name, Docs: col.Docs[:len(col.Docs)-5], NumPersonas: col.NumPersonas,
		})
		docs += len(col.Docs)
	}
	return base, full, docs, nil
}

// flattenMembers maps member refs to flattened document indices for the
// recall metric.
func flattenMembers(cols []*corpus.Collection, members [][]pipeline.DocRef) [][]int {
	offset := make([]int, len(cols))
	off := 0
	for ci, col := range cols {
		offset[ci] = off
		off += len(col.Docs)
	}
	out := make([][]int, len(members))
	for i, mem := range members {
		out[i] = make([]int, len(mem))
		for j, ref := range mem {
			out[i][j] = offset[ref.Col] + ref.Doc
		}
	}
	return out
}

// annBench fills in the ANN fields of the report: iters timed Block
// passes over the full corpus with the base graph restored (untimed)
// before each, then one recall comparison of the warm graph's blocks
// against the exact canopy pass.
func annBench(rep *BenchReport, nCols, nDocs, iters, efSearch int) error {
	ctx := context.Background()
	base, full, docs, err := annCorpus(nCols, nDocs)
	if err != nil {
		return err
	}
	scheme, err := blocking.ParseScheme("canopy")
	if err != nil {
		return err
	}
	approx, ok := scheme.(blocking.ApproxScheme)
	if !ok {
		return fmt.Errorf("canopy lost its approximation policy")
	}
	cfg := ann.Config{Scheme: approx, EfSearch: efSearch}
	seed, err := ann.New(cfg)
	if err != nil {
		return err
	}
	if _, err := seed.Update(base); err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := seed.EncodeTo(&buf); err != nil {
		return err
	}
	encoded := buf.Bytes()

	var ab *pipeline.ANNBlocker
	var timed time.Duration
	for i := 0; i < iters; i++ {
		idx, err := ann.Decode(bytes.NewReader(encoded), cfg)
		if err != nil {
			return err
		}
		ab = pipeline.NewANNBlockerWith(idx)
		start := time.Now()
		if _, err := ab.BlockFingerprints(ctx, full); err != nil {
			return err
		}
		timed += time.Since(start)
	}

	// The last blocker's graph is warm (delta already inserted), so this
	// membership pass measures recall of the steady-state index.
	_, annMembers, err := ab.BlockMembership(ctx, full)
	if err != nil {
		return err
	}
	_, exactMembers, err := pipeline.NewSchemeBlocker(approx).BlockMembership(ctx, full)
	if err != nil {
		return err
	}
	rep.ANNBlockDocsPerSec = float64(docs*iters) / timed.Seconds()
	rep.ANNRecall = eval.CandidateRecall(
		flattenMembers(full, exactMembers), flattenMembers(full, annMembers))
	rep.ANNDocs = docs
	return nil
}
