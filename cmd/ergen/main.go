// Command ergen generates synthetic web-document datasets for person-name
// entity resolution and writes them as JSON.
//
// Usage:
//
//	ergen -profile www05|weps [-seed N] [-out file.json] [-stats]
//	ergen -name cohen -docs 100 -personas 8 [-noise 0.5] [-out file.json]
//
// The first form materializes one of the paper's dataset profiles; the
// second generates a single custom collection.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	var (
		profile  = flag.String("profile", "", "dataset profile: www05 or weps")
		seed     = flag.Int64("seed", 2010, "generation seed")
		out      = flag.String("out", "", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print dataset statistics instead of JSON")
		name     = flag.String("name", "", "custom collection: ambiguous surname")
		docs     = flag.Int("docs", 100, "custom collection: number of pages")
		personas = flag.Int("personas", 8, "custom collection: number of real persons")
		noise    = flag.Float64("noise", 0.5, "custom collection: boilerplate noise in [0,1]")
		missing  = flag.Float64("missing", 0.25, "custom collection: missing-channel probability")
		spurious = flag.Float64("spurious", 0.3, "custom collection: spurious-entity probability")
		template = flag.Float64("template", 0.25, "custom collection: shared-template probability")
	)
	flag.Parse()

	dataset, err := build(*profile, *seed, *name, *docs, *personas, *noise, *missing, *spurious, *template)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ergen:", err)
		os.Exit(1)
	}

	if *stats {
		printStats(dataset)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ergen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "ergen:", err)
		os.Exit(1)
	}
}

func build(profile string, seed int64, name string, docs, personas int,
	noise, missing, spurious, template float64) (*corpus.Dataset, error) {

	switch profile {
	case "www05":
		return corpus.WWW05Profile().Generate(seed)
	case "weps":
		return corpus.WePSProfile().Generate(seed)
	case "":
		if name == "" {
			return nil, fmt.Errorf("pass -profile www05|weps or -name for a custom collection")
		}
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name:        name,
			NumDocs:     docs,
			NumPersonas: personas,
			Noise:       noise,
			MissingInfo: missing,
			Spurious:    spurious,
			Template:    template,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		return &corpus.Dataset{Label: "custom", Collections: []*corpus.Collection{col}}, nil
	default:
		return nil, fmt.Errorf("unknown profile %q (want www05 or weps)", profile)
	}
}

func printStats(d *corpus.Dataset) {
	fmt.Printf("dataset %s: %d collections, %d documents\n", d.Label, len(d.Collections), d.TotalDocs())
	fmt.Printf("%-14s %6s %9s %12s %12s\n", "name", "docs", "personas", "largest", "avg-text")
	for _, c := range d.Collections {
		sizes := make(map[int]int)
		textLen := 0
		for _, doc := range c.Docs {
			sizes[doc.PersonaID]++
			textLen += len(doc.Text)
		}
		largest := 0
		for _, s := range sizes {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("%-14s %6d %9d %12d %11dB\n",
			c.Name, len(c.Docs), c.NumPersonas, largest, textLen/len(c.Docs))
	}
}
