// Command experiments regenerates the tables and figures of the paper's
// evaluation section over the synthetic datasets.
//
// Usage:
//
//	experiments [-seed N] [-runs N] [-quick]
//	            [-exp all|fig1|fig2|fig3|table2|table3|ablations|incremental|annrecall]
//
// Output is printed as text tables; Table II additionally prints the
// paper's reported numbers and the shape checks documented in DESIGN.md.
// An interrupt (Ctrl-C) cancels the in-flight experiment mid-computation
// through the pipeline's context.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		seed  = flag.Int64("seed", 2010, "root random seed")
		runs  = flag.Int("runs", 5, "independent training draws to average")
		quick = flag.Bool("quick", false, "reduced setup (2 runs) for smoke tests")
		exp   = flag.String("exp", "all", "experiment: all, fig1, fig2, fig3, table2, table3, ablations, incremental, annrecall")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Runs = *runs
	if *quick {
		cfg = experiments.QuickConfig()
		cfg.Seed = *seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg experiments.Config, exp string) error {
	runOne := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	all := exp == "all"
	if all || exp == "fig1" {
		if err := runOne("fig1", func() error {
			f, err := experiments.Figure1(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig2" {
		if err := runOne("fig2", func() error {
			f, err := experiments.Figure2(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			fmt.Printf("combined wins per metric: %v\n", f.CombinedWins())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig3" {
		if err := runOne("fig3", func() error {
			f, err := experiments.Figure3(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			fmt.Printf("combined wins per metric: %v\n", f.CombinedWins())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "table2" {
		if err := runOne("table2", func() error {
			t, err := experiments.TableII(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			fmt.Println("\npaper-reported values:")
			for _, row := range t.RowLabels() {
				fmt.Printf("  %-18s", row)
				for _, col := range t.Columns() {
					fmt.Printf("  %s=%.4f", col, experiments.PaperTableII[row][col])
				}
				if rw, ok := experiments.RelatedWork[row]; ok {
					fmt.Printf("  related: %s", rw)
				}
				fmt.Println()
			}
			fmt.Println("\nshape checks:")
			for _, line := range experiments.TableIIShapeChecks(t) {
				fmt.Println("  " + line)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "table3" {
		if err := runOne("table3", func() error {
			t, err := experiments.TableIII(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(t.String())
			fmt.Println("\nshape checks:")
			for _, line := range experiments.TableIIIShapeChecks(t) {
				fmt.Println("  " + line)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if exp == "ablations" {
		if err := runOne("ablations", func() error { return runAblations(ctx, cfg) }); err != nil {
			return err
		}
	}
	if exp == "incremental" {
		if err := runOne("incremental", func() error {
			// Quick configs (2 runs) sweep a 4-name subset in 3 batches;
			// the full sweep staggers all 12 names over 5 batches.
			batches, names := 5, 0
			if cfg.Runs <= 2 {
				batches, names = 3, 4
			}
			rows, err := experiments.IncrementalSweep(ctx, cfg, batches, names)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderIncrementalSweep(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if exp == "annrecall" {
		if err := runOne("annrecall", func() error {
			// Quick configs sweep fewer beam widths.
			efs := []int{16, 32, 64, 128, 256}
			if cfg.Runs <= 2 {
				efs = []int{16, 64}
			}
			rep, err := experiments.ANNRecallSweep(ctx, cfg, efs)
			if err != nil {
				return err
			}
			fmt.Print(rep.Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if !all && exp != "fig1" && exp != "fig2" && exp != "fig3" &&
		exp != "table2" && exp != "table3" && exp != "ablations" &&
		exp != "incremental" && exp != "annrecall" {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// runAblations prints every design-choice ablation of DESIGN.md §5.
func runAblations(ctx context.Context, cfg experiments.Config) error {
	type ablation struct {
		title string
		run   func() ([]experiments.AblationResult, error)
	}
	for _, a := range []ablation{
		{"criteria pools (region schemes)", func() ([]experiments.AblationResult, error) {
			return experiments.AblationRegionScheme(ctx, cfg)
		}},
		{"region count k", func() ([]experiments.AblationResult, error) {
			return experiments.AblationRegionK(ctx, cfg, []int{5, 10, 15})
		}},
		{"final clustering step", func() ([]experiments.AblationResult, error) {
			return experiments.AblationClustering(ctx, cfg)
		}},
		{"training fraction", func() ([]experiments.AblationResult, error) {
			return experiments.AblationTrainFraction(ctx, cfg, []float64{0.05, 0.10, 0.20})
		}},
		{"combination method", func() ([]experiments.AblationResult, error) {
			return experiments.AblationCombination(ctx, cfg)
		}},
		{"framework vs R-Swoosh baseline", func() ([]experiments.AblationResult, error) {
			return experiments.BaselineComparison(ctx, cfg)
		}},
	} {
		res, err := a.run()
		if err != nil {
			return fmt.Errorf("%s: %w", a.title, err)
		}
		fmt.Print(experiments.RenderAblation(a.title, res))
	}
	return nil
}
