// Command ersolve runs the entity-resolution pipeline over a dataset JSON
// file (as produced by ergen) and prints the resolved entities, optionally
// with quality scores against the embedded ground truth; `ersolve serve`
// exposes the same pipeline as an HTTP service.
//
// Usage:
//
//	ersolve -in dataset.json [-strategy best|threshold|weighted|majority]
//	        [-clustering closure|correlation]
//	        [-blocking exact|token|sortedneighborhood|canopy]
//	        [-blocking-mode exact|ann] [-ann-m 12] [-ann-ef 64]
//	        [-keys collection|names|urlhost|phonetic] [-block-shards 16]
//	        [-train 0.10] [-regions 10] [-seed N] [-score] [-members]
//	ersolve serve [-addr :8476] [-timeout 30s] [-max-body 33554432]
//	        [-queue 64] [-drain 10s] [-data DIR] [-job-history 1024]
//	        [-block-shards 16] [-read-cache 1024] [-trace-buffer 256]
//
// The serve mode accepts POST /v1/resolve with an ergen dataset JSON body
// (plus optional "strategy", "clustering", "blocking", "timeout_ms", …
// fields) and answers with clusters and scores; requests are canceled
// mid-resolution when their timeout fires. It additionally owns a
// document store fed asynchronously through POST /v1/collections (ingest
// jobs, tracked via GET /v1/jobs/{id}) and resolved via POST
// /v1/resolve/incremental, which re-prepares only blocks whose membership
// changed since the previous run. With -data DIR the store and every
// configuration's incremental snapshot are durable: ingested batches are
// journaled (and fsynced) before they are acknowledged, snapshots are
// saved after every incremental run, and a restarted server replays the
// journal and reloads the snapshots — its first incremental resolution
// reuses every block instead of re-preparing the corpus. GET /metrics
// exposes every counter and latency histogram in the Prometheus text
// format, and GET /v1/traces dumps the last -trace-buffer request traces
// with per-stage pipeline spans. On SIGINT/SIGTERM the server drains
// in-flight requests and queued ingest jobs for up to -drain before
// canceling what remains, then flushes and closes the data directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/persist"
	"repro/internal/pipeline"
	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(ctx, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "ersolve serve:", err)
			var ue *usageError
			if errors.As(err, &ue) {
				os.Exit(2)
			}
			os.Exit(1)
		}
		return
	}

	var (
		in         = flag.String("in", "", "input dataset JSON (required)")
		strategy   = flag.String("strategy", "best", "best | threshold | weighted | majority")
		clustering = flag.String("clustering", "closure", "closure | correlation")
		blockingF  = flag.String("blocking", "exact", "exact | token | sortedneighborhood | canopy")
		modeF      = flag.String("blocking-mode", "exact", "block-stage implementation: exact | ann (ann needs -blocking canopy or sortedneighborhood)")
		annM       = flag.Int("ann-m", 0, "ANN graph degree bound (0 = default 12; with -blocking-mode ann)")
		annEf      = flag.Int("ann-ef", 0, "ANN neighbor-query beam width, the recall knob (0 = default 64; with -blocking-mode ann)")
		keysF      = flag.String("keys", "collection", "blocking keys: collection | names | urlhost | phonetic")
		shards     = flag.Int("block-shards", 0, "sharded blocking index partitions (0 = default)")
		train      = flag.Float64("train", 0.10, "training fraction")
		regionK    = flag.Int("regions", 10, "accuracy-estimation regions")
		seed       = flag.Int64("seed", 1, "random seed")
		score      = flag.Bool("score", false, "score against embedded ground truth")
		members    = flag.Bool("members", false, "list cluster members")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ersolve: -in is required")
		os.Exit(2)
	}
	if *train <= 0 || *train >= 1 {
		fmt.Fprintf(os.Stderr, "ersolve: -train: %v is out of range; need a fraction in (0, 1)\n", *train)
		os.Exit(2)
	}
	if *regionK < 1 {
		fmt.Fprintf(os.Stderr, "ersolve: -regions: %d is out of range; need an integer >= 1\n", *regionK)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "ersolve: -block-shards: %d is out of range; need 0 (default) or a positive shard count\n", *shards)
		os.Exit(2)
	}

	// Validate every enum flag up front so a typo fails fast with the
	// list of valid values, before any data is loaded.
	strategyFn, err := pipeline.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ersolve: -strategy:", err)
		os.Exit(2)
	}
	clusteringM, err := core.ParseClusteringMethod(*clustering)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ersolve: -clustering:", err)
		os.Exit(2)
	}
	scheme, err := blocking.ParseScheme(*blockingF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ersolve: -blocking:", err)
		os.Exit(2)
	}
	keyFn, err := pipeline.ParseKeys(*keysF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ersolve: -keys:", err)
		os.Exit(2)
	}
	if *modeF != "ann" && (*annM != 0 || *annEf != 0) {
		fmt.Fprintln(os.Stderr, "ersolve: -ann-m/-ann-ef apply only with -blocking-mode ann")
		os.Exit(2)
	}
	if *annM < 0 || *annM == 1 {
		fmt.Fprintf(os.Stderr, "ersolve: -ann-m: %d is not a usable graph degree; need 0 (default) or at least 2\n", *annM)
		os.Exit(2)
	}
	if *annEf < 0 {
		fmt.Fprintf(os.Stderr, "ersolve: -ann-ef: %d is out of range; need 0 (default) or a positive beam width\n", *annEf)
		os.Exit(2)
	}
	// Key-based schemes block through the sharded index (the incremental
	// Block stage); global schemes keep the per-run pass in exact mode
	// and the approximate candidate graph with -blocking-mode ann.
	blocker, err := pipeline.NewModeBlocker(*modeF, scheme, keyFn, *shards,
		pipeline.ANNOptions{M: *annM, EfSearch: *annEf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ersolve: -blocking-mode:", err)
		os.Exit(2)
	}

	if err := run(ctx, *in, strategyFn, clusteringM, blocker, *train, *regionK, *seed, *score, *members); err != nil {
		fmt.Fprintln(os.Stderr, "ersolve:", err)
		os.Exit(1)
	}
}

// usageError marks a flag-validation failure so main can exit with the
// conventional usage status 2 instead of the runtime-failure status 1.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

// loadDataset reads and validates the dataset, closing the file on every
// path and surfacing close errors.
func loadDataset(path string) (*corpus.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	dataset, err := corpus.ReadJSON(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, cerr
	}
	return dataset, err
}

func run(ctx context.Context, in string, strategy pipeline.Strategy, clustering core.ClusteringMethod,
	blocker pipeline.Blocker, train float64, regionK int, seed int64, score, members bool) error {

	dataset, err := loadDataset(in)
	if err != nil {
		return err
	}

	opts := core.DefaultOptions()
	opts.TrainFraction = train
	opts.RegionK = regionK
	opts.Seed = seed
	opts.Clustering = clustering
	pl, err := pipeline.New(pipeline.Config{
		Options:  opts,
		Strategy: strategy,
		Blocker:  blocker,
		Score:    score,
	})
	if err != nil {
		return err
	}

	results, err := pl.Run(ctx, dataset.Collections)
	if err != nil {
		return err
	}

	var scores []eval.Result
	for _, res := range results {
		fmt.Printf("%s: %d pages -> %d entities (%s)\n",
			res.Block.Name, len(res.Block.Docs), res.Resolution.NumEntities(), res.Resolution.Source)
		if members {
			clusters := make(map[int][]int)
			for doc, label := range res.Resolution.Labels {
				clusters[label] = append(clusters[label], doc)
			}
			for label := 0; label < res.Resolution.NumEntities(); label++ {
				fmt.Printf("  entity %d: %v\n", label, clusters[label])
			}
		}
		if res.Score != nil {
			scores = append(scores, *res.Score)
			fmt.Printf("  Fp=%.4f F=%.4f Rand=%.4f\n", res.Score.Fp, res.Score.F, res.Score.Rand)
		}
	}
	if score && len(scores) > 1 {
		avg := eval.Aggregate(scores)
		fmt.Printf("\naverage: Fp=%.4f F=%.4f Rand=%.4f\n", avg.Fp, avg.F, avg.Rand)
	}
	return nil
}

// runServe starts the HTTP service layer and blocks until the listener
// fails or an interrupt triggers a graceful shutdown: in-flight requests
// and queued ingest jobs get the drain window to finish, then are
// canceled.
func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ersolve serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8476", "listen address")
		timeout = fs.Duration("timeout", 30*time.Second, "maximum per-request resolution time")
		maxBody = fs.Int64("max-body", 32<<20, "maximum request body bytes")
		queue   = fs.Int("queue", 64, "ingest job backlog size")
		history = fs.Int("job-history", 1024, "finished ingest-job records kept queryable")
		drain   = fs.Duration("drain", 10*time.Second, "shutdown drain window for in-flight work")
		dataDir = fs.String("data", "", "durable data directory (default in-memory only)")
		shards  = fs.Int("block-shards", 0, "sharded blocking index partitions (0 = default)")
		rcache  = fs.Int("read-cache", 0, "read-path response cache entries (0 = default 1024, negative disables)")
		tbuf    = fs.Int("trace-buffer", 0, "recent request traces kept for GET /v1/traces (0 = default 256, negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *addr == "":
		return &usageError{"-addr: listen address must not be empty"}
	case *timeout <= 0:
		return &usageError{fmt.Sprintf("-timeout: %v is out of range; need a positive duration", *timeout)}
	case *maxBody <= 0:
		return &usageError{fmt.Sprintf("-max-body: %d is out of range; need a positive byte count", *maxBody)}
	case *queue < 1:
		return &usageError{fmt.Sprintf("-queue: %d is out of range; need a backlog of at least 1", *queue)}
	case *history < 0:
		return &usageError{fmt.Sprintf("-job-history: %d is out of range; need 0 or a positive record count", *history)}
	case *drain <= 0:
		return &usageError{fmt.Sprintf("-drain: %v is out of range; need a positive drain window", *drain)}
	case *shards < 0:
		return &usageError{fmt.Sprintf("-block-shards: %d is out of range; need 0 (default) or a positive shard count", *shards)}
	}

	cfg := service.Config{
		DefaultTimeout: *timeout,
		MaxTimeout:     *timeout,
		MaxBodyBytes:   *maxBody,
		QueueBuffer:    *queue,
		JobHistory:     *history,
		BlockShards:    *shards,
		ReadCache:      *rcache,
		TraceBuffer:    *tbuf,
	}

	// The listener comes up immediately with a bootstrap handler that
	// answers 503 to everything — /readyz included — while the data
	// directory is opened and its journal replayed in the background. Once
	// replay finishes, the real service handler is swapped in atomically
	// and /readyz flips to 200, so an orchestrator can start the process,
	// point a readiness probe at it, and route traffic only when recovery
	// is done — a large journal no longer looks like a hung start.
	var handler atomic.Value
	handler.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting","detail":"journal replay in progress"}`)
	})))
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}

	// srv and data are published by the opener goroutine and consumed by
	// the shutdown goroutine; either may still be nil when a very early
	// signal arrives.
	var mu sync.Mutex
	var data *persist.Data
	var srv *service.Server
	openFail := make(chan error, 1)
	go func() {
		if *dataDir != "" {
			d, err := persist.Open(*dataDir)
			if err != nil {
				openFail <- err
				httpSrv.Close()
				return
			}
			st := d.Store.Stats()
			fmt.Fprintf(os.Stderr, "ersolve: data directory %s: %d collections, %d documents (version %d)\n",
				*dataDir, st.Collections, st.Docs, st.Version)
			cfg.Store = d.Store
			cfg.Snapshots = d.Snapshots
			cfg.Indexes = d.Indexes
			cfg.ANNIndexes = d.ANN
			cfg.Serving = d.Serving
			mu.Lock()
			data = d
			mu.Unlock()
		}
		s := service.New(cfg)
		mu.Lock()
		srv = s
		mu.Unlock()
		handler.Store(http.Handler(s.Handler()))
		fmt.Fprintln(os.Stderr, "ersolve: ready")
	}()

	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "ersolve: shutting down, draining for up to %v\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// First stop taking requests and let in-flight handlers finish,
		// then drain the ingest backlog with whatever window remains, and
		// finally flush and close the data directory so the last journal
		// write and segment state land on disk.
		err := httpSrv.Shutdown(shutdownCtx)
		mu.Lock()
		s, d := srv, data
		mu.Unlock()
		if s != nil {
			if cerr := s.Close(shutdownCtx); err == nil && cerr != nil {
				err = fmt.Errorf("draining ingest jobs: %w", cerr)
			}
		}
		if d != nil {
			if cerr := d.Close(); err == nil && cerr != nil {
				err = fmt.Errorf("flushing data directory: %w", cerr)
			}
		}
		done <- err
	}()

	fmt.Fprintf(os.Stderr,
		"ersolve: serving POST /v1/resolve, /v1/collections, /v1/resolve/incremental on %s (timeout %v)\n",
		*addr, *timeout)
	err := httpSrv.ListenAndServe()
	select {
	case oerr := <-openFail:
		return oerr
	default:
	}
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}
