// Command ersolve runs the entity-resolution framework over a dataset JSON
// file (as produced by ergen) and prints the resolved entities, optionally
// with quality scores against the embedded ground truth.
//
// Usage:
//
//	ersolve -in dataset.json [-strategy best|threshold|weighted|majority]
//	        [-clustering closure|correlation] [-train 0.10] [-regions 10]
//	        [-seed N] [-score] [-members]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/stats"
)

func main() {
	var (
		in         = flag.String("in", "", "input dataset JSON (required)")
		strategy   = flag.String("strategy", "best", "best | threshold | weighted | majority")
		clustering = flag.String("clustering", "closure", "closure | correlation")
		train      = flag.Float64("train", 0.10, "training fraction")
		regionK    = flag.Int("regions", 10, "accuracy-estimation regions")
		seed       = flag.Int64("seed", 1, "random seed")
		score      = flag.Bool("score", false, "score against embedded ground truth")
		members    = flag.Bool("members", false, "list cluster members")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ersolve: -in is required")
		os.Exit(1)
	}

	if err := run(*in, *strategy, *clustering, *train, *regionK, *seed, *score, *members); err != nil {
		fmt.Fprintln(os.Stderr, "ersolve:", err)
		os.Exit(1)
	}
}

func run(in, strategy, clustering string, train float64, regionK int,
	seed int64, score, members bool) error {

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	dataset, err := corpus.ReadJSON(f)
	if err != nil {
		return err
	}

	opts := core.DefaultOptions()
	opts.TrainFraction = train
	opts.RegionK = regionK
	opts.Seed = seed
	switch clustering {
	case "closure":
		opts.Clustering = core.TransitiveClosure
	case "correlation":
		opts.Clustering = core.CorrelationClustering
	default:
		return fmt.Errorf("unknown clustering %q", clustering)
	}
	resolver, err := core.New(opts)
	if err != nil {
		return err
	}

	var scores []eval.Result
	for i, col := range dataset.Collections {
		prep, err := resolver.Prepare(col)
		if err != nil {
			return err
		}
		analysis, err := prep.Run(stats.SplitSeedN(seed, i))
		if err != nil {
			return err
		}
		var res *core.Resolution
		switch strategy {
		case "best":
			res, err = analysis.BestAnyCriterion()
		case "threshold":
			res, err = analysis.BestThresholdOnly()
		case "weighted":
			res, err = analysis.WeightedAverage()
		case "majority":
			res, err = analysis.MajorityVote()
		default:
			return fmt.Errorf("unknown strategy %q", strategy)
		}
		if err != nil {
			return err
		}

		fmt.Printf("%s: %d pages -> %d entities (%s)\n",
			col.Name, len(col.Docs), res.NumEntities(), res.Source)
		if members {
			clusters := make(map[int][]int)
			for doc, label := range res.Labels {
				clusters[label] = append(clusters[label], doc)
			}
			for label := 0; label < res.NumEntities(); label++ {
				fmt.Printf("  entity %d: %v\n", label, clusters[label])
			}
		}
		if score {
			s, err := eval.Evaluate(res.Labels, col.GroundTruth())
			if err != nil {
				return err
			}
			scores = append(scores, s)
			fmt.Printf("  Fp=%.4f F=%.4f Rand=%.4f\n", s.Fp, s.F, s.Rand)
		}
	}
	if score && len(scores) > 1 {
		avg := eval.Aggregate(scores)
		fmt.Printf("\naverage: Fp=%.4f F=%.4f Rand=%.4f\n", avg.Fp, avg.F, avg.Rand)
	}
	return nil
}
