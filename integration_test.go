package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/simfn"
	"repro/internal/stats"
	"repro/internal/swoosh"
)

// Integration tests exercise full cross-module paths: dataset generation →
// feature extraction → similarity → training → combination → clustering →
// evaluation, plus the serialization and baseline paths.

func TestEndToEndWWW05Collection(t *testing.T) {
	d, err := corpus.WWW05Profile().Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	col := d.Collections[1] // "cohen", 3 personas
	r, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(col)
	if err != nil {
		t.Fatal(err)
	}
	score, err := eval.Evaluate(res.Labels, col.GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	if score.Fp < 0.5 {
		t.Errorf("end-to-end Fp = %v on an easy collection", score.Fp)
	}
	if res.NumEntities() < 1 || res.NumEntities() > len(col.Docs) {
		t.Errorf("entities = %d", res.NumEntities())
	}
}

func TestFrameworkBeatsEveryFunctionOnAverage(t *testing.T) {
	// A compact version of Figure 2's headline on three collections.
	d, err := corpus.WWW05Profile().Generate(2010)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	perFunc := make(map[string][]eval.Result)
	var combined []eval.Result
	for i, col := range d.Collections[:3] {
		prep, err := r.Prepare(col)
		if err != nil {
			t.Fatal(err)
		}
		a, err := prep.Run(stats.SplitSeedN(5, i))
		if err != nil {
			t.Fatal(err)
		}
		truth := col.GroundTruth()
		for _, id := range simfn.SubsetI10 {
			res, err := a.SingleFunction(id, core.ThresholdCriterion)
			if err != nil {
				t.Fatal(err)
			}
			s, err := eval.Evaluate(res.Labels, truth)
			if err != nil {
				t.Fatal(err)
			}
			perFunc[id] = append(perFunc[id], s)
		}
		res, err := a.BestAnyCriterion()
		if err != nil {
			t.Fatal(err)
		}
		s, err := eval.Evaluate(res.Labels, truth)
		if err != nil {
			t.Fatal(err)
		}
		combined = append(combined, s)
	}
	cAvg := eval.Aggregate(combined)
	beaten := 0
	for _, id := range simfn.SubsetI10 {
		if cAvg.Fp >= eval.Aggregate(perFunc[id]).Fp {
			beaten++
		}
	}
	if beaten < 9 {
		t.Errorf("combined beats only %d/10 functions on Fp", beaten)
	}
}

func TestDatasetJSONRoundTripThroughResolver(t *testing.T) {
	p := corpus.DatasetProfile{
		Label: "roundtrip", Names: []string{"lee"}, DocsPerName: 30,
		ClusterCounts: []int{3}, Noise: 0.5, MissingInfo: 0.2,
		Spurious: 0.2, Template: 0.2,
	}
	d, err := p.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := corpus.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := r.Resolve(d.Collections[0])
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := r.Resolve(back.Collections[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Labels {
		if orig.Labels[i] != loaded.Labels[i] {
			t.Fatal("resolution differs after JSON round trip")
		}
	}
}

func TestBlockingFeedsResolver(t *testing.T) {
	// Exact-key blocking over a multi-name record set must reproduce the
	// per-collection blocks the resolver assumes.
	d, err := corpus.WWW05Profile().Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	var records []blocking.Record
	id := 0
	blockOf := make(map[int]string)
	for _, col := range d.Collections[:3] {
		for range col.Docs {
			records = append(records, blocking.Record{ID: id, Keys: []string{col.Name}})
			blockOf[id] = col.Name
			id++
		}
	}
	pairs := blocking.ExactKey{}.Candidates(records)
	for _, p := range pairs {
		if blockOf[p.A] != blockOf[p.B] {
			t.Fatalf("cross-name candidate pair %v", p)
		}
	}
	// Each of the three 100-doc blocks contributes C(100,2) pairs.
	want := 3 * 100 * 99 / 2
	if len(pairs) != want {
		t.Errorf("pairs = %d, want %d", len(pairs), want)
	}
}

func TestSwooshBaselineAgainstFramework(t *testing.T) {
	res, err := experiments.BaselineComparison(t.Context(), experiments.Config{
		Seed: 2010, Runs: 1, TrainFraction: 0.10, RegionK: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Name != "framework-C10" || res[1].Name != "rswoosh-baseline" {
		t.Errorf("labels = %v / %v", res[0].Name, res[1].Name)
	}
	// The paper's framework must beat the generic baseline.
	if res[0].Score.Fp <= res[1].Score.Fp {
		t.Errorf("framework Fp %v <= baseline Fp %v", res[0].Score.Fp, res[1].Score.Fp)
	}
}

func TestCorrelationClusteringAgreesOnCleanBlocks(t *testing.T) {
	// On a very clean block both clustering methods should land close.
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "nelson", NumDocs: 40, NumPersonas: 3,
		Noise: 0.2, MissingInfo: 0.1, Spurious: 0.1, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := col.GroundTruth()

	run := func(m core.ClusteringMethod) eval.Result {
		opts := core.DefaultOptions()
		opts.Clustering = m
		r, err := core.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Resolve(col)
		if err != nil {
			t.Fatal(err)
		}
		s, err := eval.Evaluate(res.Labels, truth)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	tc := run(core.TransitiveClosure)
	cc := run(core.CorrelationClustering)
	if tc.Fp < 0.6 || cc.Fp < 0.6 {
		t.Errorf("clean block scores too low: closure %v, correlation %v", tc.Fp, cc.Fp)
	}
	diff := tc.Fp - cc.Fp
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.3 {
		t.Errorf("methods diverge wildly on a clean block: %v vs %v", tc.Fp, cc.Fp)
	}
}

func TestSwooshMatchesClosureWithPairwiseOnlyMatch(t *testing.T) {
	// With a match function that only looks at immutable singleton features
	// of the ORIGINAL documents, R-Swoosh over singletons reaches at least
	// the transitive closure of the pairwise match graph.
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "baker", NumDocs: 25, NumPersonas: 3,
		Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := simfn.PrepareBlock(col, nil)
	records := swoosh.FromBlock(block)
	// The domination property requires a match function monotone under
	// union merges: entity overlap only (cosine thresholds above 1 disable
	// the vector paths — a merged record's summed vector can be LESS
	// similar to a third record than either constituent was).
	match := swoosh.ThresholdMatch(1.5, 1.5, 3)
	resolved, err := swoosh.RSwoosh(records, match)
	if err != nil {
		t.Fatal(err)
	}
	labels := swoosh.Labels(resolved, len(records))

	g := ergraph.NewGraph(len(records))
	for i := range records {
		for j := i + 1; j < len(records); j++ {
			if match(records[i], records[j]) {
				if err := g.AddEdge(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	closure := g.ConnectedComponents()
	for i := range records {
		for j := i + 1; j < len(records); j++ {
			if closure[i] == closure[j] && labels[i] != labels[j] {
				t.Fatalf("swoosh split a closure-connected pair (%d,%d)", i, j)
			}
		}
	}
}
