package repro_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// TestErgenErsolveRoundTrip exercises the full CLI data path in-process:
// generate a tiny dataset the way ergen does, serialize it to JSON, load
// it back the way ersolve does, resolve it through the streaming pipeline
// API, and check the scored output end to end.
func TestErgenErsolveRoundTrip(t *testing.T) {
	// ergen -name patel -docs 24 -personas 3
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "patel", NumDocs: 24, NumPersonas: 3,
		Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Template: 0.2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := &corpus.Dataset{Label: "roundtrip", Collections: []*corpus.Collection{col}}

	var buf bytes.Buffer
	if err := gen.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dataset, err := corpus.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// ersolve -in … -score, expressed through the pipeline API.
	const seed = 5
	opts := core.DefaultOptions()
	opts.Seed = seed
	pl, err := pipeline.New(pipeline.Config{Options: opts, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := pl.Run(context.Background(), dataset.Collections)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d blocks, want 1", len(results))
	}
	res := results[0]
	if res.Block.Name != "patel" || len(res.Resolution.Labels) != 24 {
		t.Fatalf("block %q with %d labels", res.Block.Name, len(res.Resolution.Labels))
	}
	n := res.Resolution.NumEntities()
	if n < 1 || n > 24 {
		t.Fatalf("entities = %d", n)
	}
	if res.Score == nil {
		t.Fatal("scored run returned no score")
	}
	if res.Score.Fp < 0.5 || res.Score.Fp > 1 || res.Score.F < 0 || res.Score.F > 1 ||
		res.Score.Rand < 0 || res.Score.Rand > 1 {
		t.Errorf("implausible scores on an easy collection: %+v", *res.Score)
	}

	// The JSON round trip must not change the resolution: resolve the
	// pre-serialization collection through the direct resolver path with
	// the pipeline's per-block seed and compare labels.
	r, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := r.Prepare(col)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prep.Run(stats.SplitSeedN(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.BestAnyCriterion()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels {
		if res.Resolution.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d after JSON round trip",
				i, res.Resolution.Labels[i], want.Labels[i])
		}
	}
}
