// Package repro_test holds the benchmark harness required by DESIGN.md:
// one benchmark per table and figure of the paper (each regenerates the
// full artifact), the ablation benchmarks for the design choices, and
// micro-benchmarks of the performance-critical substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks report custom metrics (Fp etc.) so the bench
// output doubles as a compact experimental record.
package repro_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/simfn"
	"repro/internal/stats"
	"repro/internal/textsim"
)

// benchConfig keeps each bench iteration affordable while covering the full
// datasets: 2 runs instead of the paper's 5.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	return cfg
}

// BenchmarkFigure1_RegionAccuracy regenerates Figure 1 (per-region link
// accuracy of F3 on "cohen") and reports the accuracy variation across
// regions, the quantity the figure demonstrates.
func BenchmarkFigure1_RegionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure1(b.Context(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Variation, "acc-variation")
	}
}

// BenchmarkFigure2_WWW05 regenerates Figure 2 (per-function vs combined on
// WWW'05) and reports the combined Fp.
func BenchmarkFigure2_WWW05(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure2(b.Context(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fp, _ := f.Table.Get("Combined", "Fp-measure")
		b.ReportMetric(fp, "combined-Fp")
	}
}

// BenchmarkFigure3_WePS regenerates Figure 3 (per-function vs combined on
// the WePS ACL names) and reports the combined Fp.
func BenchmarkFigure3_WePS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3(b.Context(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fp, _ := f.Table.Get("Combined", "Fp-measure")
		b.ReportMetric(fp, "combined-Fp")
	}
}

// BenchmarkTable2_Comparison regenerates Table II (I/C/W columns on both
// datasets) and reports the WWW'05 C10 Fp.
func BenchmarkTable2_Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableII(b.Context(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		c10, _ := t.Get("WWW05/Fp-measure", "C10")
		b.ReportMetric(c10, "WWW05-C10-Fp")
	}
}

// BenchmarkTable3_PerName regenerates Table III (per-name Fp of every
// function on WWW'05) and reports how many names C10 wins or ties.
func BenchmarkTable3_PerName(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableIII(b.Context(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		winners := t.ArgBest()
		c10 := 0
		for _, w := range winners {
			if w == "C10" {
				c10++
			}
		}
		b.ReportMetric(float64(c10), "C10-wins")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

func ablationCfg() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Runs = 1
	return cfg
}

// BenchmarkAblation_Regions compares the decision-criteria pools.
func BenchmarkAblation_Regions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRegionScheme(b.Context(), ablationCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[len(res)-1].Score.Fp-res[0].Score.Fp, "all-vs-threshold-Fp")
	}
}

// BenchmarkAblation_K varies the region count.
func BenchmarkAblation_K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRegionK(b.Context(), ablationCfg(), []int{5, 10, 15})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[1].Score.Fp, "k10-Fp")
	}
}

// BenchmarkAblation_Clustering compares transitive closure with correlation
// clustering.
func BenchmarkAblation_Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationClustering(b.Context(), ablationCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[1].Score.Fp-res[0].Score.Fp, "correlation-minus-closure-Fp")
	}
}

// BenchmarkAblation_TrainingFraction varies the labeled fraction.
func BenchmarkAblation_TrainingFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTrainFraction(b.Context(), ablationCfg(), []float64{0.05, 0.10, 0.20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[2].Score.Fp-res[0].Score.Fp, "train20-minus-train5-Fp")
	}
}

// BenchmarkAblation_Combination compares the combination methods.
func BenchmarkAblation_Combination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCombination(b.Context(), ablationCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].Score.Fp, "best-graph-Fp")
	}
}

// --- Component micro-benchmarks ---

func benchBlock(b *testing.B) *simfn.Block {
	b.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: 100, NumPersonas: 8,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return simfn.PrepareBlock(col, nil)
}

// BenchmarkPrepareBlock measures the per-collection preprocessing cost
// (feature extraction + TF-IDF vectors for 100 pages).
func BenchmarkPrepareBlock(b *testing.B) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: 100, NumPersonas: 8,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simfn.PrepareBlock(col, nil)
	}
}

// BenchmarkSimilarityMatrix measures computing one function's full pairwise
// matrix over a 100-page block, per function family.
func BenchmarkSimilarityMatrix(b *testing.B) {
	block := benchBlock(b)
	for _, id := range []string{"F1", "F2", "F3", "F8", "F9"} {
		f, err := simfn.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simfn.ComputeMatrix(block, f)
			}
		})
	}
}

// BenchmarkResolveCollection measures the full Algorithm 1 end to end on
// one 100-page collection.
func BenchmarkResolveCollection(b *testing.B) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: 100, NumPersonas: 8,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.New(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Resolve(col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisRun measures one training draw + all 30 decision graphs
// over a prepared collection (the per-run cost the experiments repeat).
func BenchmarkAnalysisRun(b *testing.B) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: 100, NumPersonas: 8,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.New(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	prep, err := r.Prepare(col)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Run(stats.SplitSeedN(1, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPorterStem measures the stemmer on a mixed vocabulary.
func BenchmarkPorterStem(b *testing.B) {
	words := []string{
		"relational", "conditional", "university", "databases", "running",
		"effectiveness", "formalize", "hopefulness", "adjustable", "entity",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.PorterStem(words[i%len(words)])
	}
}

// BenchmarkStringSimilarities measures the name comparators on typical
// person names.
func BenchmarkStringSimilarities(b *testing.B) {
	pairs := [][2]string{
		{"andrew mccallum", "andrew maccallum"},
		{"john smith", "smith, john r."},
		{"leslie kaelbling", "fernando pereira"},
	}
	b.Run("JaroWinkler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			textsim.JaroWinkler(p[0], p[1])
		}
	})
	b.Run("Levenshtein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			textsim.Levenshtein(p[0], p[1])
		}
	})
	b.Run("NameSimilarity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			textsim.NameSimilarity(p[0], p[1])
		}
	})
}

// BenchmarkVectorSimilarities measures the TF-IDF pair measures on realistic
// document vectors.
func BenchmarkVectorSimilarities(b *testing.B) {
	block := benchBlock(b)
	va, vb := block.Docs[0].TermVector, block.Docs[1].TermVector
	b.Run("Cosine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			textsim.Cosine(va, vb)
		}
	})
	b.Run("Pearson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			textsim.PearsonSim(va, vb)
		}
	})
	b.Run("ExtendedJaccard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			textsim.ExtendedJaccard(va, vb)
		}
	})
}

// BenchmarkGenerateCollection measures the synthetic corpus generator.
func BenchmarkGenerateCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: "cohen", NumDocs: 100, NumPersonas: 8,
			Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25,
			Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaseline_RSwoosh compares the framework (C10) against the
// R-Swoosh generic entity-resolution baseline on WWW'05 and reports the
// framework's margin.
func BenchmarkBaseline_RSwoosh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.BaselineComparison(b.Context(), ablationCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].Score.Fp-res[1].Score.Fp, "framework-margin-Fp")
	}
}
