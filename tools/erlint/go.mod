module repro/tools/erlint

go 1.24
