package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/erlint/internal/checkers"
	"repro/tools/erlint/internal/driver"
	"repro/tools/erlint/internal/load"
)

// standalone runs the suite over ./...-style patterns resolved against the
// enclosing module, type-checking from source so no build cache or network
// is needed.
func standalone(args []string) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if patterns[0] == "-list" {
		for _, a := range checkers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		return 2
	}
	root, module, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		return 2
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		return 2
	}
	selected := selectPackages(module, root, cwd, dirs, patterns)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "erlint: no packages match %v\n", patterns)
		return 2
	}

	loader := load.New(load.Root{Prefix: module, Dir: root})
	exit := 0
	for _, pkgPath := range selected {
		units, err := loader.Load(pkgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erlint: %v\n", err)
			return 2
		}
		for _, unit := range units {
			for _, f := range driver.Analyze(unit, checkers.All()) {
				fmt.Println(f)
				exit = 1
			}
		}
	}
	return exit
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.Open(filepath.Join(d, "go.mod"))
		if err == nil {
			defer data.Close()
			sc := bufio.NewScanner(data)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// packageDirs lists every directory under root holding Go files, skipping
// testdata trees, hidden directories and nested modules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// selectPackages resolves ./...-style patterns (relative to cwd) and
// import-path patterns against the module's package directories, returning
// sorted import paths.
func selectPackages(module, root, cwd string, dirs []string, patterns []string) []string {
	match := func(imp, dir string) bool {
		for _, pat := range patterns {
			target := pat
			if strings.HasPrefix(pat, "./") || pat == "." {
				sub := strings.TrimPrefix(pat, "./")
				sub, ellipsis := strings.CutSuffix(sub, "...")
				rel, err := filepath.Rel(root, filepath.Join(cwd, strings.TrimSuffix(sub, "/")))
				if err != nil || rel == ".." || strings.HasPrefix(rel, "../") {
					continue
				}
				target = module
				if rel != "." {
					target = module + "/" + filepath.ToSlash(rel)
				}
				if ellipsis {
					target += "/..."
				}
			}
			if rest, ok := strings.CutSuffix(target, "..."); ok {
				rest = strings.TrimSuffix(rest, "/")
				if rest == "" || imp == rest || strings.HasPrefix(imp, rest+"/") {
					return true
				}
			} else if imp == target {
				return true
			}
		}
		return false
	}
	var out []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			continue
		}
		imp := module
		if rel != "." {
			imp = module + "/" + filepath.ToSlash(rel)
		}
		if match(imp, dir) {
			out = append(out, imp)
		}
	}
	sort.Strings(out)
	return out
}
