// Package metricreg keeps the Prometheus exposition honest (PR 8): every
// instrument must be obtained from metrics.Registry — a Counter or
// Histogram constructed as a bare literal never renders on /metrics, so
// its increments silently vanish from scrapes — and instrument names must
// follow the repo's namespace rules: the ersolve_ prefix, snake_case, a
// _total suffix for counters and a _seconds suffix for histograms.
package metricreg

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/tools/erlint/internal/analysis"
)

// Analyzer flags instruments constructed outside Registry registration and
// registered names violating the ersolve_ namespace rules.
var Analyzer = &analysis.Analyzer{
	Name: "metricreg",
	Doc: "metrics instruments must come from Registry registration and " +
		"carry ersolve_-namespaced snake_case names with unit suffixes",
	Run: run,
}

// metricsPkgSuffix identifies the instrument package; inside it, literal
// construction is the implementation.
const metricsPkgSuffix = "internal/metrics"

// instrumentTypes are the registry-owned instrument types.
var instrumentTypes = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// registerMethods maps Registry methods to the instrument kind they
// register, for suffix rules.
var registerMethods = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), metricsPkgSuffix) || strings.HasSuffix(pass.Pkg.Path(), metricsPkgSuffix+"_test") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.CallExpr:
				checkNew(pass, n)
				checkRegistration(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkLiteral flags metrics.Counter{} / &metrics.Histogram{} literals.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	if name, ok := instrumentType(tv.Type); ok {
		pass.Reportf(lit.Pos(),
			"metrics.%s constructed as a literal never renders on /metrics; obtain it from a metrics.Registry", name)
	}
}

// checkNew flags new(metrics.Counter) and friends.
func checkNew(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "new" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return
	}
	if name, ok := instrumentType(tv.Type); ok {
		pass.Reportf(call.Pos(),
			"new(metrics.%s) never renders on /metrics; obtain the instrument from a metrics.Registry", name)
	}
}

// instrumentType reports whether t (or its pointee) is one of the metrics
// package's instrument types.
func instrumentType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), metricsPkgSuffix) {
		return "", false
	}
	if !instrumentTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// checkRegistration validates the name argument of Registry registration
// calls.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	kind, ok := registerMethods[sel.Sel.Name]
	if !ok || len(call.Args) < 1 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	tn := recv.Type()
	if p, ok := tn.(*types.Pointer); ok {
		tn = p.Elem()
	}
	named, ok := tn.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" ||
		named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), metricsPkgSuffix) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"metric name must be a compile-time constant so the exposition can be audited statically")
		return
	}
	name := constant.StringVal(tv.Value)
	if problem := lintName(name, kind); problem != "" {
		pass.Reportf(call.Args[0].Pos(), "metric name %q %s", name, problem)
	}
}

// lintName returns a problem description for a metric name, empty when the
// name conforms to the ersolve_ namespace rules.
func lintName(name, kind string) string {
	if !strings.HasPrefix(name, "ersolve_") {
		return "is outside the ersolve_ namespace"
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
			return "must be snake_case: lowercase letters, digits and underscores only"
		}
	}
	if strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		return "has empty name segments"
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return "is a counter and must end in _total"
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") {
			return "is a histogram and must carry its unit suffix (_seconds)"
		}
	}
	return ""
}
