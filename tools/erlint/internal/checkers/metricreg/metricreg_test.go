package metricreg_test

import (
	"testing"

	"repro/tools/erlint/internal/analysistest"
	"repro/tools/erlint/internal/checkers/metricreg"
)

func TestMetricreg(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metricreg.Analyzer,
		"repro/internal/web")
}
