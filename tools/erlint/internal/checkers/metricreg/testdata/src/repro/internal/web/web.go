// Package web exercises metricreg: instruments must come from a Registry
// and carry conforming ersolve_ names.
package web

import "repro/internal/metrics"

var reg = &metrics.Registry{}

func bad() {
	_ = &metrics.Counter{}                       // want `metrics.Counter constructed as a literal never renders on /metrics`
	_ = new(metrics.Histogram)                   // want `new\(metrics.Histogram\) never renders on /metrics`
	_ = reg.Counter("requests_total")            // want `metric name "requests_total" is outside the ersolve_ namespace`
	_ = reg.Counter("ersolve_requests")          // want `metric name "ersolve_requests" is a counter and must end in _total`
	_ = reg.Histogram("ersolve_latency_ms", nil) // want `metric name "ersolve_latency_ms" is a histogram and must carry its unit suffix \(_seconds\)`
	_ = reg.Gauge("ersolve_Depth")               // want `must be snake_case`
	_ = reg.Gauge("ersolve__depth")              // want `has empty name segments`
	name := dynamic()
	_ = reg.Counter(name) // want `metric name must be a compile-time constant`
}

func dynamic() string { return "ersolve_dynamic_total" }

func good() {
	_ = reg.Counter("ersolve_requests_total")
	_ = reg.Gauge("ersolve_queue_depth")
	_ = reg.Histogram("ersolve_resolve_seconds", nil)
}
