// Package metrics is a minimal stand-in for the repo's instrument
// package: the analyzer recognizes the internal/metrics path suffix, the
// instrument types and the Registry registration methods.
package metrics

// Counter is a monotone counter.
type Counter struct{ v uint64 }

// Gauge reports an instantaneous value.
type Gauge struct{ v int64 }

// Histogram tracks a distribution.
type Histogram struct{ sum float64 }

// Registry owns every instrument.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram { return &Histogram{} }
