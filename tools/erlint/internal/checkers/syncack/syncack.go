// Package syncack guards the durability contract (PRs 4/6): every byte the
// store acknowledges is fsynced first, and every mutating filesystem
// operation in the durable layers goes through the faultfs.FS seam so the
// crash-injection harness actually exercises it. Two rules follow:
//
//  1. In internal/persist, a function that writes to a syncable file
//     handle (anything with both Write and Sync — faultfs.File, *os.File)
//     must also Sync (or SyncDir) before it is done; write-without-sync is
//     how an acked batch dies in the page cache.
//  2. In internal/persist, internal/serving and internal/store, calling
//     os.* mutators (os.Rename, os.Remove, os.OpenFile, …) directly
//     bypasses the seam: the crash harness never sees the operation, so
//     the crash-safety proof silently stops covering it.
package syncack

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/erlint/internal/analysis"
)

// Analyzer flags unsynced file writes in internal/persist and direct os.*
// mutation calls in the durable packages.
var Analyzer = &analysis.Analyzer{
	Name: "syncack",
	Doc: "journal/segment writes in internal/persist must be followed by " +
		"Sync, and file mutation in persist/serving/store must go through faultfs",
	Run: run,
}

// seamPkgs are the import-path suffixes whose file I/O must go through
// faultfs.
var seamPkgs = []string{"internal/persist", "internal/serving", "internal/store"}

// osMutators are the os functions that change the filesystem.
var osMutators = map[string]bool{
	"Create": true, "CreateTemp": true, "OpenFile": true, "Mkdir": true,
	"MkdirAll": true, "Rename": true, "Remove": true, "RemoveAll": true,
	"Truncate": true, "WriteFile": true, "Chtimes": true, "Chmod": true,
	"Chown": true, "Symlink": true, "Link": true,
}

// writeMethods are the mutating methods of a file handle.
var writeMethods = map[string]bool{"Write": true, "WriteString": true, "WriteAt": true}

func run(pass *analysis.Pass) (any, error) {
	inSeam := false
	for _, suffix := range seamPkgs {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			inSeam = true
		}
	}
	if !inSeam {
		return nil, nil
	}
	isPersist := strings.HasSuffix(pass.Pkg.Path(), "internal/persist")
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkOSCall(pass, call)
			return true
		})
		if isPersist {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkWriteSync(pass, fd)
				}
			}
		}
	}
	return nil, nil
}

// checkOSCall flags direct calls to os mutators.
func checkOSCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !osMutators[sel.Sel.Name] {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return
	}
	pass.Reportf(call.Pos(),
		"direct os.%s bypasses the faultfs.FS seam; route file mutation through the injected filesystem so the crash harness covers it",
		sel.Sel.Name)
}

// checkWriteSync flags writes to syncable handles in functions that never
// Sync: on an ack path, the write would not survive a crash.
func checkWriteSync(pass *analysis.Pass, fd *ast.FuncDecl) {
	var writes []*ast.CallExpr
	synced := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			switch {
			case name == "Sync" || name == "SyncDir":
				synced = true
			case writeMethods[name] && syncable(pass.TypesInfo.TypeOf(sel.X)):
				writes = append(writes, call)
			}
		}
		// io.WriteString(f, …) writes through its first argument.
		if isIoWriteString(pass, call) && len(call.Args) > 0 && syncable(pass.TypesInfo.TypeOf(call.Args[0])) {
			writes = append(writes, call)
		}
		return true
	})
	if synced {
		return
	}
	for _, w := range writes {
		pass.Reportf(w.Pos(),
			"file write in %s is never followed by Sync in this function; fsync-before-ack requires flushing before the result is acknowledged",
			fd.Name.Name)
	}
}

// syncable reports whether t's method set carries both Sync and a write
// method — a real file handle rather than an in-memory buffer.
func syncable(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "Sync") && (hasMethod(t, "Write") || hasMethod(t, "WriteString"))
}

func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	if f, ok := obj.(*types.Func); ok {
		return f != nil
	}
	return false
}

// isIoWriteString matches io.WriteString.
func isIoWriteString(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteString" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "io"
}
