// Package other sits outside the durable seam; syncack leaves its direct
// os mutation and unsynced writes alone.
package other

import "os"

// Rename is fine here: only persist/serving/store route through faultfs.
func Rename(dir string) error {
	return os.Rename(dir+"/a", dir+"/b")
}
