// Package persist exercises the syncack analyzer under the durable
// layer's import path: writes to syncable handles must be fsynced in the
// same function, and os.* mutators are off limits.
package persist

import (
	"io"
	"os"
)

// File is a syncable handle in the faultfs mold.
type File struct{}

// Write appends to the handle.
func (*File) Write(p []byte) (int, error) { return len(p), nil }

// WriteString appends a string.
func (*File) WriteString(s string) (int, error) { return len(s), nil }

// Sync flushes the handle.
func (*File) Sync() error { return nil }

// buffer has Write but no Sync: an in-memory staging area, not a durable
// handle, so writes to it are unrestricted.
type buffer struct{}

// Write appends to the buffer.
func (*buffer) Write(p []byte) (int, error) { return len(p), nil }

func ackWithoutSync(f *File, rec []byte) error {
	_, err := f.Write(rec) // want `file write in ackWithoutSync is never followed by Sync`
	return err
}

func ackWithSync(f *File, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	return f.Sync()
}

func headerNoSync(f *File) {
	_, _ = io.WriteString(f, "header") // want `file write in headerNoSync is never followed by Sync`
}

func stageInMemory(b *buffer, rec []byte) {
	_, _ = b.Write(rec)
}

func renameDirect(dir string) error {
	return os.Rename(dir+"/a", dir+"/b") // want `direct os.Rename bypasses the faultfs.FS seam`
}

func readOnly(path string) (*os.File, error) {
	return os.Open(path) // reads do not mutate; allowed
}
