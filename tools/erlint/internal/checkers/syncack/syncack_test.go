package syncack_test

import (
	"testing"

	"repro/tools/erlint/internal/analysistest"
	"repro/tools/erlint/internal/checkers/syncack"
)

func TestSyncack(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), syncack.Analyzer,
		"repro/internal/persist", "other")
}
