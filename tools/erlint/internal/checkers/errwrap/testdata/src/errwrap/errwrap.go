// Package errwrap exercises the errwrap analyzer: fmt.Errorf must wrap
// error arguments with %w, and sentinel comparisons must use errors.Is.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrQueueFull mimics a repo sentinel: package-level, error-typed,
// Err-prefixed.
var ErrQueueFull = errors.New("queue full")

// errLocal is package-level but not Err-prefixed, so not a sentinel.
var errLocal = errors.New("local")

func flagged(err error) {
	_ = fmt.Errorf("enqueue: %v", err) // want `fmt.Errorf formats an error argument without %w`
	_ = fmt.Errorf("enqueue: %s", err) // want `fmt.Errorf formats an error argument without %w`
	if err == ErrQueueFull {           // want `error compared against sentinel ErrQueueFull with ==`
		return
	}
	if ErrQueueFull != err { // want `error compared against sentinel ErrQueueFull with !=`
		return
	}
	switch err {
	case ErrQueueFull: // want `switch compares error against sentinel ErrQueueFull with ==`
	}
}

func clean(err error) {
	_ = fmt.Errorf("enqueue: %w", err)
	_ = fmt.Errorf("%d items failed: %w", 3, err)
	_ = fmt.Errorf("no error arguments: %d%%", 7)
	if errors.Is(err, ErrQueueFull) {
		return
	}
	if err == nil || err == errLocal {
		return
	}
	switch {
	case errors.Is(err, ErrQueueFull):
	}
}
