package errwrap_test

import (
	"testing"

	"repro/tools/erlint/internal/analysistest"
	"repro/tools/erlint/internal/checkers/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errwrap.Analyzer, "errwrap")
}
