// Package errwrap enforces the repo's typed-error discipline (PR 4/6):
// errors carrying a cause must wrap it with %w so callers can match
// through the chain, and comparisons against the packages' exported
// sentinels (ErrSnapshotCorrupt, ErrCodecVersion, ErrQueueFull, …) must go
// through errors.Is — a == that used to work breaks silently the moment a
// call boundary starts wrapping.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/erlint/internal/analysis"
)

// Analyzer flags fmt.Errorf calls that format an error argument without
// %w, and ==/!=/switch-case comparisons of errors against Err* sentinels.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf with an error argument must use %w, and sentinel " +
		"comparisons must use errors.Is, never == or switch cases",
	Run: run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkErrorf flags fmt.Errorf("... %v ...", err) style calls: an
// error-typed argument formatted by anything when the format has no %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || len(call.Args) < 2 {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if countVerb(constant.StringVal(tv.Value), 'w') > 0 {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorExpr(pass, arg) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf formats an error argument without %%w; wrap with %%w so errors.Is/As match through the chain")
		}
	}
}

// countVerb counts occurrences of %<verb>, skipping %% escapes and any
// flag/width characters between the percent and the verb.
func countVerb(format string, verb byte) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.*[]", format[j]) >= 0 {
			j++
		}
		if j < len(format) {
			if format[j] == verb {
				n++
			}
			i = j
		}
	}
	return n
}

// checkCompare flags err ==/!= ErrSentinel.
func checkCompare(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
		sentinel, other := pair[0], pair[1]
		if name, ok := sentinelName(pass, sentinel); ok && isErrorExpr(pass, other) {
			pass.Reportf(bin.Pos(),
				"error compared against sentinel %s with %s; use errors.Is so wrapped errors still match", name, bin.Op)
			return
		}
	}
}

// checkSwitch flags switch err { case ErrSentinel: } comparisons.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorExpr(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, v := range cc.List {
			if name, ok := sentinelName(pass, v); ok {
				pass.Reportf(v.Pos(),
					"switch compares error against sentinel %s with ==; use errors.Is so wrapped errors still match", name)
			}
		}
	}
}

// sentinelName reports whether expr refers to a package-level error
// variable named Err*, the repo's sentinel convention.
func sentinelName(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !types.Implements(v.Type(), errorIface) {
		return "", false
	}
	return v.Name(), true
}

// isErrorExpr reports whether expr's static type satisfies error. Nil
// literals and non-error operands are excluded.
func isErrorExpr(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorIface)
}
