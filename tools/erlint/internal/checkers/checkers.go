// Package checkers enumerates erlint's analyzers.
package checkers

import (
	"repro/tools/erlint/internal/analysis"
	"repro/tools/erlint/internal/checkers/ctxflow"
	"repro/tools/erlint/internal/checkers/errwrap"
	"repro/tools/erlint/internal/checkers/immutable"
	"repro/tools/erlint/internal/checkers/metricreg"
	"repro/tools/erlint/internal/checkers/syncack"
)

// All returns every erlint analyzer in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		errwrap.Analyzer,
		immutable.Analyzer,
		metricreg.Analyzer,
		syncack.Analyzer,
	}
}
