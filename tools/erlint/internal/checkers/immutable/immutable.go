// Package immutable enforces the repo's publish-immutability invariant
// (PRs 3/5/7): values like serving.Index, pipeline.Snapshot and
// textsim.PackedVector are built once, published behind an atomic pointer
// or shared snapshot, and then only read. A type opts in with an
// erlint:immutable marker on its declaration; from then on its fields may
// only be written while the value is provably fresh — a local just built
// with &T{…}/new(T)/a value-typed copy — or inside a standard decoder
// method (GobDecode, UnmarshalBinary, …), which by contract initializes
// its receiver. Writes through parameters, globals, struct fields and
// range-aliased pointers are flagged: those are exactly the values that
// may already be visible to concurrent readers.
package immutable

import (
	"bufio"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"

	"repro/tools/erlint/internal/analysis"
	"repro/tools/erlint/internal/directive"
)

// Analyzer flags field writes to erlint:immutable types outside fresh
// construction and decoder methods.
var Analyzer = &analysis.Analyzer{
	Name: "immutable",
	Doc: "types marked // erlint:immutable may only have fields written " +
		"while freshly constructed or inside their decoder methods",
	Run: run,
}

// decoderMethods are receiver-initializing methods the Go ecosystem
// defines by contract; writes to the receiver are construction, not
// mutation.
var decoderMethods = map[string]bool{
	"GobDecode":       true,
	"UnmarshalBinary": true,
	"UnmarshalJSON":   true,
	"UnmarshalText":   true,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		local:     localAnnotated(pass),
		fileCache: make(map[string][]string),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
		// Package-level var initializers can also mutate: var _ = mutate().
		// Writes can only hide inside function literals, which ast.Inspect
		// on declarations above already covered via FuncDecl bodies; var
		// blocks hold expressions, not statements, so nothing to do here.
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// local is the set of annotated type objects declared in this package.
	local map[*types.TypeName]bool
	// fileCache memoizes source lines for cross-package marker lookup.
	fileCache map[string][]string
}

// localAnnotated collects the erlint:immutable types declared in the
// package under analysis.
func localAnnotated(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !directive.IsImmutable(gd.Doc, ts.Doc, ts.Comment) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

// annotated reports whether the named type carries the erlint:immutable
// marker. Same-package types come from syntax; imported types are checked
// by reading the declaration site recorded in their type information, so
// the check works identically under the standalone driver and go vet.
func (c *checker) annotated(tn *types.TypeName) bool {
	if tn.Pkg() == c.pass.Pkg {
		return c.local[tn]
	}
	pos := c.pass.Fset.Position(tn.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	lines, ok := c.fileCache[pos.Filename]
	if !ok {
		lines = readLines(pos.Filename)
		c.fileCache[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return false
	}
	// The marker sits on the declaration line or in the doc comment
	// immediately above it.
	for i := pos.Line - 1; i >= 0 && i >= pos.Line-12; i-- {
		line := lines[i]
		if i < pos.Line-1 {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, "//") {
				break
			}
		}
		if strings.Contains(line, "erlint:immutable") {
			return true
		}
	}
	return false
}

func readLines(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

// checkFunc inspects one function body for writes into annotated types.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				c.checkWrite(fd, lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(fd, n.X)
		}
		return true
	})
}

// checkWrite walks the write target's selector chain; if any selection
// reads a field of an annotated type, the write mutates that type and must
// be justified by freshness or a decoder method.
func (c *checker) checkWrite(fd *ast.FuncDecl, target ast.Expr) {
	expr := target
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := c.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if tn := namedOwner(sel.Recv()); tn != nil && c.annotated(tn) {
					if !c.allowed(fd, e, tn) {
						c.pass.Reportf(target.Pos(),
							"write to field %s of immutable type %s.%s outside fresh construction; "+
								"erlint:immutable values may only be mutated while local to their constructor or in decoder methods",
							sel.Obj().Name(), tn.Pkg().Name(), tn.Name())
					}
					return
				}
			}
			expr = e.X
		default:
			return
		}
	}
}

// allowed reports whether a write through selector e into annotated type
// tn is legitimate: a decoder method's receiver, a value-typed local copy,
// or a pointer local every assignment of which is a fresh &T{}/new(T).
func (c *checker) allowed(fd *ast.FuncDecl, e *ast.SelectorExpr, tn *types.TypeName) bool {
	// Decoder methods on *T in T's package initialize their receiver.
	if fd.Recv != nil && decoderMethods[fd.Name.Name] && tn.Pkg() == c.pass.Pkg {
		if rt := c.pass.TypesInfo.TypeOf(fd.Recv.List[0].Type); rt != nil && namedOwner(rt) == tn {
			return true
		}
	}
	base, ok := baseIdent(e.X)
	if !ok {
		return false
	}
	obj, ok := c.pass.TypesInfo.Uses[base].(*types.Var)
	if !ok {
		return false
	}
	// The freshness exemptions reason about the annotated value itself; a
	// base variable of some other type (a helper struct holding a *T field,
	// say) reaches shared data no matter how local it is.
	if namedOwner(obj.Type()) != tn {
		return false
	}
	// A value-typed variable is its own copy: writes cannot reach a
	// published value. (Publishing the copy afterwards is the intended
	// build-then-publish pattern.)
	if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
		_, isLocal := c.localOf(fd, obj)
		return isLocal || isParam(fd, c.pass, obj)
	}
	// A pointer variable must be body-local and only ever assigned fresh
	// allocations.
	assigns, isLocal := c.localOf(fd, obj)
	if !isLocal {
		return false
	}
	if len(assigns) == 0 {
		return false // range variable, closure capture we didn't see, …
	}
	for _, rhs := range assigns {
		if !c.fresh(rhs) {
			return false
		}
	}
	return true
}

// baseIdent finds the identifier at the bottom of a selector/index/deref
// chain; ok is false when the chain roots in a call or other non-variable.
func baseIdent(expr ast.Expr) (*ast.Ident, bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e, true
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, false
		}
	}
}

// localOf reports whether obj is declared inside fd's body and collects
// every RHS expression assigned to it there (from :=, =, and var decls).
// Variables bound by range clauses or type switches contribute no RHS and
// therefore never count as fresh.
func (c *checker) localOf(fd *ast.FuncDecl, obj *types.Var) (assigns []ast.Expr, isLocal bool) {
	if obj.Pos() < fd.Body.Pos() || obj.Pos() > fd.Body.End() {
		return nil, false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if c.pass.TypesInfo.Defs[id] == obj || c.pass.TypesInfo.Uses[id] == obj {
					if len(n.Rhs) == len(n.Lhs) {
						assigns = append(assigns, n.Rhs[i])
					} else {
						// Multi-value call/comma-ok: not a fresh allocation.
						assigns = append(assigns, n.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if c.pass.TypesInfo.Defs[name] == obj {
					if i < len(n.Values) {
						assigns = append(assigns, n.Values[i])
					}
					// var x *T with no initializer stays nil until a
					// tracked assignment; nothing to record.
				}
			}
		}
		return true
	})
	return assigns, true
}

// isParam reports whether obj is one of fd's parameters or its receiver.
func isParam(fd *ast.FuncDecl, pass *analysis.Pass, obj *types.Var) bool {
	fields := []*ast.FieldList{fd.Type.Params, fd.Recv}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if pass.TypesInfo.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}

// fresh reports whether rhs is a fresh allocation of the written type:
// &T{…}, new(T), or a T{…} composite literal.
func (c *checker) fresh(rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}

// namedOwner unwraps pointers and returns the named type's object, nil for
// unnamed types.
func namedOwner(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
