package immutable_test

import (
	"testing"

	"repro/tools/erlint/internal/analysistest"
	"repro/tools/erlint/internal/checkers/immutable"
)

func TestImmutable(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), immutable.Analyzer,
		"immut", "immutclient")
}
