// Package immut exercises the immutable analyzer: an annotated type may
// only have its fields written while the value is provably fresh or
// inside a decoder method.
package immut

// Box is built once and then shared by concurrent readers.
//
// erlint:immutable
type Box struct {
	// Vals is the payload.
	Vals []int
	// N caches len(Vals).
	N int
}

// Plain carries no annotation; writes to it are unrestricted.
type Plain struct{ n int }

// NewBox writes freely: the pointer is a fresh local until returned.
func NewBox(vals []int) *Box {
	b := &Box{}
	b.Vals = vals
	b.N = len(vals)
	return b
}

// GobDecode is a decoder method: receiver writes are construction.
func (b *Box) GobDecode(data []byte) error {
	b.N = len(data)
	return nil
}

func mutateParam(b *Box) {
	b.N = 7 // want `write to field N of immutable type immut.Box`
}

func mutateElem(b *Box) {
	b.Vals[0] = 1 // want `write to field Vals of immutable type immut.Box`
}

func mutateRange(boxes []*Box) {
	for _, b := range boxes {
		b.N++ // want `write to field N of immutable type immut.Box`
	}
}

// holder aliases a Box behind a value type, the sort-helper shape.
type holder struct{ b *Box }

func (h holder) mutateThrough() {
	h.b.N = 3 // want `write to field N of immutable type immut.Box`
}

func valueCopy(b Box) {
	b.N = 9 // value parameter: writes land on the copy, never the original
}

func freshValue() Box {
	var b Box
	b.N = 1
	return b
}

// reassignedToParam shows the freshness rule is flow-insensitive: once
// any assignment to b is non-fresh, every write through b is suspect.
func reassignedToParam(p *Box) *Box {
	b := &Box{}
	b.N = 1 // want `write to field N of immutable type immut.Box`
	b = p
	b.N = 2 // want `write to field N of immutable type immut.Box`
	return b
}

func plainOK(p *Plain) {
	p.n = 5
}
