// Package immutclient mutates an annotated type imported from another
// package, exercising the cross-package marker lookup the analyzer needs
// under go vet, where imports arrive as export data.
package immutclient

import "immut"

func Mutate(b *immut.Box) {
	b.N = 1 // want `write to field N of immutable type immut.Box`
}

func Fresh() *immut.Box {
	b := &immut.Box{}
	b.N = 2
	return b
}
