// Package pipeline exercises the blocking-send rules ctxflow applies
// inside internal/pipeline (and internal/store): a send must be escapable
// through ctx.Done() or a default clause.
package pipeline

import "context"

func bareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `blocking channel send outside select`
}

func guardedSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func defaultSend(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func unguardedSelectSend(ctx context.Context, ch, other chan int) {
	select {
	case ch <- 1: // want `channel send in a select with no ctx\.Done\(\) case and no default`
	case <-other:
	}
}
