// Package ctxflow exercises the function-level rules of the ctxflow
// analyzer: cancellation-relevant concurrency needs a context.Context.
package ctxflow

import (
	"context"
	"testing"
)

func spawns() { // want `spawns starts a goroutine but has no context.Context parameter`
	go func() {}()
}

func spawnsCtx(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

func selects(ch chan int) { // want `selects blocks in a select but has no context.Context parameter`
	select {
	case <-ch:
	}
}

func selectsNonBlocking(ch chan int) {
	select {
	case <-ch:
	default:
	}
}

func callsCtxVariant() { // want `callsCtxVariant calls ResolveCtx but has no context.Context parameter`
	ResolveCtx(context.Background())
}

// ResolveCtx is the cancelable variant callsCtxVariant should have been.
func ResolveCtx(ctx context.Context) {}

// main is a process entry point: the context originates here.
func main() {
	go func() {}()
}

// server stores its lifecycle context, the pattern service.Server uses.
type server struct {
	ctx context.Context
}

func (s *server) loop(ch chan int) {
	select {
	case <-ch:
	}
}

func testHelper(t *testing.T, ch chan int) {
	select {
	case <-ch:
	}
}
