package ctxflow_test

import (
	"testing"

	"repro/tools/erlint/internal/analysistest"
	"repro/tools/erlint/internal/checkers/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"ctxflow", "repro/internal/pipeline")
}
