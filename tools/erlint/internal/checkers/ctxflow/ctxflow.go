// Package ctxflow enforces the pipeline's cancellation discipline (PR 2):
// concurrency must be cancelable. A function that starts goroutines,
// blocks in a select, or calls a ...Ctx variant needs a context.Context of
// its own to thread through, and the hot channels in internal/pipeline and
// internal/store may never block a send without a ctx.Done() (or default)
// escape — a blocked send with no way out is how a canceled resolve leaks
// its workers.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/erlint/internal/analysis"
)

// Analyzer flags concurrency without a context and, in internal/pipeline
// and internal/store, blocking channel sends outside a cancelable select.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "functions that start goroutines, select on channels or call ...Ctx " +
		"variants must accept a context.Context; blocking sends in " +
		"internal/pipeline and internal/store must sit in a select with ctx.Done()",
	Run: run,
}

// sendGuardedPkgs are the import-path suffixes whose channel sends must be
// cancelable: the streaming pipeline and the ingest job queue.
var sendGuardedPkgs = []string{"internal/pipeline", "internal/store"}

func run(pass *analysis.Pass) (any, error) {
	guarded := false
	for _, suffix := range sendGuardedPkgs {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			guarded = true
		}
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
			if guarded {
				checkSends(pass, fd)
			}
		}
	}
	return nil, nil
}

// checkFunc requires a context.Context parameter on functions that use
// cancellation-relevant concurrency. Everything inside the declaration,
// nested closures included, is attributed to it: the closures inherit
// their cancellation signal from its scope.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if exemptFunc(pass, fd) {
		return
	}
	var reason string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			reason = "starts a goroutine"
		case *ast.SelectStmt:
			if !hasDefault(n) {
				reason = "blocks in a select"
			}
		case *ast.CallExpr:
			if name := calleeName(n); strings.HasSuffix(name, "Ctx") && len(name) > len("Ctx") {
				reason = "calls " + name
			}
		}
		return true
	})
	if reason != "" {
		pass.Reportf(fd.Name.Pos(),
			"%s %s but has no context.Context parameter; cancellation cannot reach it", fd.Name.Name, reason)
	}
}

// exemptFunc reports whether fd may use concurrency without its own
// context parameter: it already has one (or an *http.Request / testing
// harness that carries one), it is main/init, or it is a method on a type
// that stores its lifecycle context in a field.
func exemptFunc(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name == "main" || fd.Name.Name == "init" {
		return true
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if isContext(t) || isNamed(t, "net/http", "Request") ||
				isNamed(t, "testing", "T") || isNamed(t, "testing", "B") || isNamed(t, "testing", "F") {
				return true
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
		if t != nil {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if st, ok := t.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if isContext(st.Field(i).Type()) {
						return true
					}
				}
			}
		}
	}
	return false
}

// checkSends flags blocking channel sends: a send statement outside any
// select, or inside a select that has neither a default clause nor a
// ctx.Done()-style receive to escape through.
func checkSends(pass *analysis.Pass, fd *ast.FuncDecl) {
	inSelect := make(map[*ast.SendStmt]*ast.SelectStmt)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					inSelect[send] = sel
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		sel := inSelect[send]
		if sel == nil {
			pass.Reportf(send.Arrow,
				"blocking channel send outside select; guard it with a select on ctx.Done() so cancellation can reach it")
			return true
		}
		if !hasDefault(sel) && !hasDoneCase(pass, sel) {
			pass.Reportf(send.Arrow,
				"channel send in a select with no ctx.Done() case and no default; cancellation cannot unblock it")
		}
		return true
	})
}

// hasDefault reports whether the select has a default clause.
func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// hasDoneCase reports whether the select receives from a Done() channel of
// a context.Context value.
func hasDoneCase(pass *analysis.Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		unary, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(unary.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fun, ok := call.Fun.(*ast.SelectorExpr); ok && fun.Sel.Name == "Done" {
			if t := pass.TypesInfo.TypeOf(fun.X); t != nil && isContext(t) {
				return true
			}
		}
	}
	return false
}

// calleeName extracts the bare called-function name from a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return isNamed(t, "context", "Context") }

// isNamed reports whether t (or the type it points to) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
