package load

import (
	"path/filepath"
	"testing"
)

// TestLoadUnits loads the x testdata package and checks the unit split:
// the base unit holds the package plus its in-package test file, the
// external test package arrives as a second unit, and both are fully
// type-checked with std imports resolved from GOROOT source.
func TestLoadUnits(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := New(Root{Prefix: "", Dir: src})
	units, err := loader.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want base + external test", len(units))
	}

	base, ext := units[0], units[1]
	if base.Path != "x" || len(base.Files) != 2 {
		t.Errorf("base unit = %s with %d files, want x with 2", base.Path, len(base.Files))
	}
	if ext.Path != "x_test" || len(ext.Files) != 1 {
		t.Errorf("external unit = %s with %d files, want x_test with 1", ext.Path, len(ext.Files))
	}
	for _, u := range units {
		if u.Types == nil || u.Info == nil || len(u.Info.Defs) == 0 {
			t.Errorf("unit %s missing type information", u.Path)
		}
	}
	if base.Types.Scope().Lookup("Greet") == nil {
		t.Error("base unit does not export Greet")
	}

	// The import-facing view must exclude test files and be memoized.
	p1, err := loader.Import("x")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loader.Import("x")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Import(x) not memoized")
	}
	if p1.Scope().Lookup("TestGreetInPackage") != nil {
		t.Error("import view includes test file declarations")
	}
}

// TestLoadMissing checks the error path for unresolvable packages.
func TestLoadMissing(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Root{Prefix: "", Dir: src}).Load("nope/missing"); err == nil {
		t.Fatal("Load of missing package succeeded")
	}
}
