package x

import "testing"

func TestGreetInPackage(t *testing.T) {
	if got := Greet("in"); got != "hi in" {
		t.Fatalf("Greet = %q", got)
	}
}
