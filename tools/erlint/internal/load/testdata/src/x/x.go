// Package x is loader test fodder: one std import, one exported
// function, in-package and external tests alongside.
package x

import "fmt"

// Greet returns a greeting.
func Greet(name string) string { return fmt.Sprintf("hi %s", name) }
