package x_test

import (
	"testing"

	"x"
)

func TestGreetExternal(t *testing.T) {
	if got := x.Greet("ext"); got != "hi ext" {
		t.Fatalf("Greet = %q", got)
	}
}
