// Package load turns directories of Go source into type-checked packages
// for erlint's analyzers, using nothing but the standard library. Std
// imports are satisfied by the compiler's source importer (GOROOT/src),
// while configurable roots map import-path prefixes to directories — the
// main module for real runs, a testdata/src tree for analysistest — the
// way GOPATH once did.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func init() {
	// Std packages are type-checked from GOROOT source; with cgo enabled
	// the source importer would shell out to the cgo tool for packages
	// like net. The pure-Go variants type-check identically and offline.
	build.Default.CgoEnabled = false
}

// Root maps an import-path prefix to the directory holding its source
// tree: {"repro", "/repo"} resolves "repro/internal/stats" to
// /repo/internal/stats. An empty Prefix matches every path.
type Root struct {
	Prefix string
	Dir    string
}

// Package is one analyzable unit: a type-checked package plus its syntax.
type Package struct {
	// Path is the unit's import path; external test packages carry their
	// "_test" suffix.
	Path string
	// Fset maps the unit's token positions.
	Fset *token.FileSet
	// Files is the parsed syntax, comments included, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// Loader loads and type-checks packages. It memoizes the import-facing
// (non-test) view of every package, so diamond imports type-check once. A
// Loader is not safe for concurrent use.
type Loader struct {
	fset  *token.FileSet
	roots []Root
	std   types.Importer
	pkgs  map[string]*types.Package
	busy  map[string]bool
}

// New returns a Loader resolving the given roots, most specific prefix
// first, with GOROOT source as the fallback for everything else.
func New(roots ...Root) *Loader {
	fset := token.NewFileSet()
	sorted := append([]Root(nil), roots...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return len(sorted[i].Prefix) > len(sorted[j].Prefix)
	})
	return &Loader{
		fset:  fset,
		roots: sorted,
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  make(map[string]*types.Package),
		busy:  make(map[string]bool),
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor resolves an import path through the roots; ok is false when no
// root matches or the directory does not exist.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		if r.Prefix == "" || path == r.Prefix || strings.HasPrefix(path, r.Prefix+"/") {
			rel := strings.TrimPrefix(strings.TrimPrefix(path, r.Prefix), "/")
			dir := filepath.Join(r.Dir, filepath.FromSlash(rel))
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				return dir, true
			}
		}
	}
	return "", false
}

// Import satisfies types.Importer: root-resolved paths load their non-test
// files; everything else comes from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return l.std.Import(path)
	}
	if l.busy[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, err := l.parseDir(dir, func(name string, f *ast.File) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files for %q in %s", path, dir)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load loads the package at the import path as analyzable units: the base
// package together with its in-package test files and, when the directory
// has an external _test package, that package as a second unit. Test-only
// directories (the repo root's integration tests) yield just the external
// test unit.
func (l *Loader) Load(path string) ([]*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("no source root resolves %q", path)
	}
	all, err := l.parseDir(dir, func(string, *ast.File) bool { return true })
	if err != nil {
		return nil, err
	}
	var base, ext []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			ext = append(ext, f)
		} else {
			base = append(base, f)
		}
	}
	var units []*Package
	if len(base) > 0 {
		pkg, info, err := l.check(path, base)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		units = append(units, &Package{Path: path, Fset: l.fset, Files: base, Types: pkg, Info: info})
	}
	if len(ext) > 0 {
		extPath := path + "_test"
		pkg, info, err := l.check(extPath, ext)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", extPath, err)
		}
		units = append(units, &Package{Path: extPath, Fset: l.fset, Files: ext, Types: pkg, Info: info})
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("no buildable Go files for %q in %s", path, dir)
	}
	return units, nil
}

// parseDir parses every buildable .go file in dir that keep accepts,
// sorted by filename for deterministic diagnostics.
func (l *Loader) parseDir(dir string, keep func(name string, f *ast.File) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildable(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if keep(name, f) {
			files = append(files, f)
		}
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.File(files[i].Pos()).Name() < l.fset.File(files[j].Pos()).Name()
	})
	return files, nil
}

// check type-checks files as the package at path.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, fmt.Errorf("type errors: %w", typeErrs[0])
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// buildTags are the constraint tags erlint evaluates files under: the
// platform the repo targets plus release tags for the toolchain baked
// into the image.
var buildTags = func() map[string]bool {
	tags := map[string]bool{"linux": true, "amd64": true, "unix": true, "gc": true}
	for i := 1; i <= 24; i++ {
		tags[fmt.Sprintf("go1.%d", i)] = true
	}
	return tags
}()

// buildable reports whether a file survives filename GOOS/GOARCH suffixes
// and //go:build constraints under buildTags.
func buildable(name string, src []byte) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	if parts := strings.Split(base, "_"); len(parts) > 1 {
		last := parts[len(parts)-1]
		if knownArch[last] {
			if last != "amd64" {
				return false
			}
			if len(parts) > 2 && knownOS[parts[len(parts)-2]] && parts[len(parts)-2] != "linux" {
				return false
			}
		} else if knownOS[last] && last != "linux" {
			return false
		}
	}
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false
		}
		return expr.Eval(func(tag string) bool { return buildTags[tag] })
	}
	return true
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}
