// Package driver runs a set of analyzers over loaded packages, applies
// the erlint:ignore directive, and produces sorted findings. It is shared
// by the standalone binary, the go vet -vettool mode, and the integration
// tests.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"repro/tools/erlint/internal/analysis"
	"repro/tools/erlint/internal/directive"
	"repro/tools/erlint/internal/load"
)

// Finding is one reportable diagnostic after directive filtering.
type Finding struct {
	// Analyzer names the check that produced the finding; the pseudo
	// analyzer "directive" reports malformed erlint:ignore comments.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message is the diagnostic text.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (erlint/%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyze runs every analyzer over the unit and returns the findings that
// survive erlint:ignore filtering, plus one finding per reasonless ignore
// directive, sorted by position.
func Analyze(unit *load.Package, analyzers []*analysis.Analyzer) []Finding {
	return AnalyzeFiles(unit.Fset, unit.Files, func(a *analysis.Analyzer, report func(analysis.Diagnostic)) error {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Types,
			TypesInfo: unit.Info,
			Report:    report,
		}
		_, err := a.Run(pass)
		return err
	}, analyzers)
}

// AnalyzeFiles is the mode-independent core: run invokes one analyzer and
// routes its diagnostics to report; the driver handles directive
// collection, suppression and ordering. Analyzer failures surface as
// findings rather than aborting the run, so one broken check cannot mask
// the others.
func AnalyzeFiles(fset *token.FileSet, files []*ast.File, run func(*analysis.Analyzer, func(analysis.Diagnostic)) error, analyzers []*analysis.Analyzer) []Finding {
	type ignoreKey struct {
		file string
		line int
	}
	// ignoreRec tracks one well-formed directive: where it sits (for the
	// unused-ignore report) and whether any diagnostic consumed it.
	type ignoreRec struct {
		pos  token.Pos
		used bool
	}
	ignores := make(map[ignoreKey]*ignoreRec)
	var findings []Finding
	for _, f := range files {
		name := fset.File(f.Pos()).Name()
		for _, ig := range directive.Ignores(fset, f) {
			if ig.Reason == "" {
				findings = append(findings, Finding{
					Analyzer: "directive",
					Pos:      fset.Position(ig.Pos),
					Message:  "erlint:ignore requires a reason: state why the invariant does not apply here",
				})
				continue
			}
			ignores[ignoreKey{name, ig.Line}] = &ignoreRec{pos: ig.Pos}
		}
	}
	failed := false
	for _, a := range analyzers {
		err := run(a, func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if rec := ignores[ignoreKey{pos.Filename, pos.Line}]; rec != nil {
				rec.used = true
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		})
		if err != nil {
			failed = true
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	// A directive no diagnostic consumed suppresses nothing: the code it
	// excused was fixed (or the ignore sits on the wrong line), and a stale
	// ignore would silently swallow the next real finding there. Reported
	// after the analyzer loop, directly into findings, so an ignore can
	// never suppress its own staleness report. When an analyzer failed its
	// diagnostics are incomplete, and "unused" cannot be distinguished from
	// "never checked" — skip the pass rather than flag live directives.
	if !failed {
		for _, rec := range ignores {
			if rec.used {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: "unused-ignore",
				Pos:      fset.Position(rec.pos),
				Message:  "erlint:ignore suppresses nothing: no finding fires on this line; delete the stale directive",
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
