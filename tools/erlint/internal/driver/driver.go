// Package driver runs a set of analyzers over loaded packages, applies
// the erlint:ignore directive, and produces sorted findings. It is shared
// by the standalone binary, the go vet -vettool mode, and the integration
// tests.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"repro/tools/erlint/internal/analysis"
	"repro/tools/erlint/internal/directive"
	"repro/tools/erlint/internal/load"
)

// Finding is one reportable diagnostic after directive filtering.
type Finding struct {
	// Analyzer names the check that produced the finding; the pseudo
	// analyzer "directive" reports malformed erlint:ignore comments.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message is the diagnostic text.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (erlint/%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyze runs every analyzer over the unit and returns the findings that
// survive erlint:ignore filtering, plus one finding per reasonless ignore
// directive, sorted by position.
func Analyze(unit *load.Package, analyzers []*analysis.Analyzer) []Finding {
	return AnalyzeFiles(unit.Fset, unit.Files, func(a *analysis.Analyzer, report func(analysis.Diagnostic)) error {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Types,
			TypesInfo: unit.Info,
			Report:    report,
		}
		_, err := a.Run(pass)
		return err
	}, analyzers)
}

// AnalyzeFiles is the mode-independent core: run invokes one analyzer and
// routes its diagnostics to report; the driver handles directive
// collection, suppression and ordering. Analyzer failures surface as
// findings rather than aborting the run, so one broken check cannot mask
// the others.
func AnalyzeFiles(fset *token.FileSet, files []*ast.File, run func(*analysis.Analyzer, func(analysis.Diagnostic)) error, analyzers []*analysis.Analyzer) []Finding {
	type ignoreKey struct {
		file string
		line int
	}
	ignores := make(map[ignoreKey]bool)
	var findings []Finding
	for _, f := range files {
		name := fset.File(f.Pos()).Name()
		for _, ig := range directive.Ignores(fset, f) {
			if ig.Reason == "" {
				findings = append(findings, Finding{
					Analyzer: "directive",
					Pos:      fset.Position(ig.Pos),
					Message:  "erlint:ignore requires a reason: state why the invariant does not apply here",
				})
				continue
			}
			ignores[ignoreKey{name, ig.Line}] = true
		}
	}
	for _, a := range analyzers {
		err := run(a, func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if ignores[ignoreKey{pos.Filename, pos.Line}] {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		})
		if err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
