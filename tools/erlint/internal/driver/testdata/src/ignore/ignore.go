// Package ignore exercises the erlint:ignore directive: a reasoned ignore
// suppresses findings on its line (or the next), a bare ignore is itself
// a finding and suppresses nothing.
package ignore

import (
	"errors"
	"fmt"
)

// ErrGone is a sentinel for the comparisons below.
var ErrGone = errors.New("gone")

func suppressedTrailing(err error) {
	_ = fmt.Errorf("load: %v", err) // erlint:ignore kept unwrapped on purpose as directive-test fodder
}

func suppressedStandalone(err error) bool {
	// erlint:ignore equality is the behavior under test here
	return err == ErrGone
}

func bareIgnore(err error) {
	_ = fmt.Errorf("load: %v", err) // erlint:ignore
}

func reported(err error) bool {
	return err == ErrGone
}

func staleIgnore(err error) error {
	// erlint:ignore stale on purpose: the wrap below satisfies errwrap, so nothing fires here
	return fmt.Errorf("load: %w", err)
}
