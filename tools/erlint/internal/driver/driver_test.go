package driver_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/tools/erlint/internal/checkers"
	"repro/tools/erlint/internal/driver"
	"repro/tools/erlint/internal/load"
)

// TestIgnoreDirective runs the full analyzer suite over the ignore
// testdata package and checks the directive semantics end to end: reasoned
// ignores suppress, a bare ignore both reports itself and fails to
// suppress, and unannotated violations surface.
func TestIgnoreDirective(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := load.New(load.Root{Prefix: "", Dir: src})
	units, err := loader.Load("ignore")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	findings := driver.Analyze(units[0], checkers.All())

	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
		if strings.Contains(f.Message, "analyzer failed") {
			t.Errorf("analyzer error surfaced as finding: %s", f)
		}
	}
	// One directive finding for the bare ignore; two errwrap findings: the
	// bare-ignored Errorf (a reasonless ignore suppresses nothing) and the
	// un-ignored comparison in reported.
	if byAnalyzer["directive"] != 1 || byAnalyzer["errwrap"] != 2 || len(findings) != 3 {
		t.Errorf("findings = %v, want 1 directive + 2 errwrap", findings)
	}
	for _, f := range findings {
		if f.Analyzer == "directive" && !strings.Contains(f.Message, "requires a reason") {
			t.Errorf("directive finding message = %q, want a requires-a-reason explanation", f.Message)
		}
	}
}
