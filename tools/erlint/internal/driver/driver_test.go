package driver_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/tools/erlint/internal/checkers"
	"repro/tools/erlint/internal/driver"
	"repro/tools/erlint/internal/load"
)

// TestIgnoreDirective runs the full analyzer suite over the ignore
// testdata package and checks the directive semantics end to end: reasoned
// ignores suppress, a bare ignore both reports itself and fails to
// suppress, and unannotated violations surface.
func TestIgnoreDirective(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := load.New(load.Root{Prefix: "", Dir: src})
	units, err := loader.Load("ignore")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	findings := driver.Analyze(units[0], checkers.All())

	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
		if strings.Contains(f.Message, "analyzer failed") {
			t.Errorf("analyzer error surfaced as finding: %s", f)
		}
	}
	// One directive finding for the bare ignore; two errwrap findings: the
	// bare-ignored Errorf (a reasonless ignore suppresses nothing) and the
	// un-ignored comparison in reported. One unused-ignore finding: the
	// reasoned directive in staleIgnore sits on a line where nothing fires.
	if byAnalyzer["directive"] != 1 || byAnalyzer["errwrap"] != 2 ||
		byAnalyzer["unused-ignore"] != 1 || len(findings) != 4 {
		t.Errorf("findings = %v, want 1 directive + 2 errwrap + 1 unused-ignore", findings)
	}
	for _, f := range findings {
		if f.Analyzer == "directive" && !strings.Contains(f.Message, "requires a reason") {
			t.Errorf("directive finding message = %q, want a requires-a-reason explanation", f.Message)
		}
	}
}

// TestUnusedIgnore pins the unused-ignore pass in isolation: the stale
// directive is reported at its own position with an actionable message,
// while every consumed directive stays silent — including the bare one,
// which already reports through the directive pseudo analyzer and must
// not be double-flagged as unused.
func TestUnusedIgnore(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := load.New(load.Root{Prefix: "", Dir: src})
	units, err := loader.Load("ignore")
	if err != nil {
		t.Fatal(err)
	}
	var unused []driver.Finding
	for _, f := range driver.Analyze(units[0], checkers.All()) {
		if f.Analyzer == "unused-ignore" {
			unused = append(unused, f)
		}
	}
	if len(unused) != 1 {
		t.Fatalf("unused-ignore findings = %v, want exactly the staleIgnore directive", unused)
	}
	f := unused[0]
	if !strings.HasSuffix(f.Pos.Filename, "ignore.go") || f.Pos.Line == 0 {
		t.Errorf("unused-ignore reported at %v, want the directive's own position", f.Pos)
	}
	if !strings.Contains(f.Message, "suppresses nothing") || !strings.Contains(f.Message, "delete") {
		t.Errorf("unused-ignore message = %q, want a suppresses-nothing explanation with the fix", f.Message)
	}
}
