// Package analysistest runs an analyzer over packages rooted in a
// testdata/src tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest: a line expecting
// a diagnostic carries
//
//	code() // want `regexp`
//
// with one quoted or backquoted regexp per expected diagnostic on that
// line.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/erlint/internal/analysis"
	"repro/tools/erlint/internal/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package pattern from dir/src, applies the analyzer, and
// reports mismatches between its diagnostics and the // want expectations
// to t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader := load.New(load.Root{Prefix: "", Dir: filepath.Join(dir, "src")})
	for _, pattern := range patterns {
		units, err := loader.Load(pattern)
		if err != nil {
			t.Errorf("loading %s: %v", pattern, err)
			continue
		}
		for _, unit := range units {
			diags := runUnit(t, a, unit)
			checkWants(t, unit, diags)
		}
	}
}

// runUnit applies the analyzer to one package unit.
func runUnit(t *testing.T, a *analysis.Analyzer, unit *load.Package) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      unit.Fset,
		Files:     unit.Files,
		Pkg:       unit.Types,
		TypesInfo: unit.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer %s failed: %v", unit.Path, a.Name, err)
	}
	return diags
}

// expectation is one // want regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRe = regexp.MustCompile("//[ \t]*want[ \t]+(.*)$")

// checkWants matches diagnostics against expectations, reporting
// unexpected and missing diagnostics.
func checkWants(t *testing.T, unit *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	seen := map[string]bool{}
	for _, f := range unit.Files {
		name := unit.Fset.File(f.Pos()).Name()
		if seen[name] {
			continue
		}
		seen[name] = true
		ws, err := parseWants(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		pos := unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the // want expectations from one source file.
func parseWants(filename string) ([]*expectation, error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			var quoted string
			switch rest[0] {
			case '`':
				end := strings.IndexByte(rest[1:], '`')
				if end < 0 {
					return nil, fmt.Errorf("line %d: unterminated want regexp", i+1)
				}
				quoted = rest[1 : 1+end]
				rest = strings.TrimSpace(rest[2+end:])
			case '"':
				var err error
				quoted, rest, err = unquoteLeading(rest)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", i+1, err)
				}
			default:
				return nil, fmt.Errorf("line %d: want expectation must be a quoted regexp, got %q", i+1, rest)
			}
			re, err := regexp.Compile(quoted)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad want regexp: %w", i+1, err)
			}
			wants = append(wants, &expectation{file: filename, line: i + 1, re: re, raw: "`" + quoted + "`"})
		}
	}
	return wants, nil
}

// unquoteLeading unquotes a leading double-quoted Go string and returns
// the remainder.
func unquoteLeading(s string) (value, rest string, err error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return v, strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("unterminated want string")
}
