// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough surface (Analyzer, Pass,
// Diagnostic) for erlint's repo-specific checkers and their tests. The
// shapes mirror x/tools deliberately so the checkers can be ported to the
// real framework by swapping the import path if the dependency ever
// becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name for diagnostics and flags, a
// doc string, and the Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags. It must
	// be a valid Go identifier.
	Name string
	// Doc is the analyzer's one-paragraph documentation: first line is a
	// summary, the rest explains the invariant it enforces.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. The result value is unused by erlint's driver and
	// exists for x/tools API symmetry.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the single-package unit of work handed to an Analyzer's Run: the
// package's syntax, type information, and a sink for diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the pass's FileSet and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
