// Package directive parses erlint's comment directives:
//
//	// erlint:immutable
//	    on a type declaration marks the type as publish-immutable for the
//	    immutable analyzer.
//
//	// erlint:ignore <reason>
//	    suppresses every erlint diagnostic on the directive's line (and,
//	    for a comment standing on its own line, the line below it). The
//	    reason is mandatory: a bare erlint:ignore is itself a finding, so
//	    suppressions can't accumulate without explanation.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	ignorePrefix    = "erlint:ignore"
	immutableMarker = "erlint:immutable"
)

// Ignore is one erlint:ignore directive.
type Ignore struct {
	// Pos is the directive comment's position.
	Pos token.Pos
	// Line is the line the directive suppresses: the directive's own line
	// for trailing comments, the following line for standalone comments.
	Line int
	// Reason is the justification text after the directive; empty means
	// the directive is malformed.
	Reason string
}

// Ignores collects every erlint:ignore directive in the file.
func Ignores(fset *token.FileSet, f *ast.File) []Ignore {
	var out []Ignore
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := directiveText(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			if pos.Column == 1 || standsAlone(fset, f, c) {
				line++
			}
			out = append(out, Ignore{Pos: c.Pos(), Line: line, Reason: strings.TrimSpace(text)})
		}
	}
	return out
}

// standsAlone reports whether comment c is the first token on its line,
// i.e. a standalone comment applying to the line below rather than a
// trailing comment on a line of code.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.Pos() < c.Pos() && fset.Position(n.Pos()).Line == cpos.Line {
			if _, isFile := n.(*ast.File); !isFile {
				alone = false
			}
		}
		return n.Pos() < c.Pos()
	})
	return alone
}

// IsImmutable reports whether the comment groups (a type's doc comment
// and/or trailing line comment) carry an erlint:immutable marker.
func IsImmutable(groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if _, ok := directiveText(c.Text, immutableMarker); ok {
				return true
			}
		}
	}
	return false
}

// directiveText matches a single comment against a directive prefix and
// returns the text following it. "// erlint:ignoreX" does not match
// "erlint:ignore".
func directiveText(comment, prefix string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}
