package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

// erlint:ignore standalone reason
var a = 1

var b = 2 // erlint:ignore trailing reason

// erlint:ignore
var c = 3

// erlint:immutable shared after publish
type T struct{}

// Unrelated comment mentioning erlint:ignorance is not a directive.
var d = 4
`

func parse(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestIgnores(t *testing.T) {
	fset, f := parse(t)
	igs := Ignores(fset, f)
	if len(igs) != 3 {
		t.Fatalf("got %d ignores, want 3: %+v", len(igs), igs)
	}
	// A standalone ignore guards the next line; a trailing one its own.
	want := []struct {
		line   int
		reason string
	}{
		{4, "standalone reason"},
		{6, "trailing reason"},
		{9, ""},
	}
	for i, w := range want {
		if igs[i].Line != w.line || igs[i].Reason != w.reason {
			t.Errorf("ignore %d = line %d reason %q, want line %d reason %q",
				i, igs[i].Line, igs[i].Reason, w.line, w.reason)
		}
	}
}

func TestIsImmutable(t *testing.T) {
	_, f := parse(t)
	var marked, unmarked bool
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts := spec.(*ast.TypeSpec)
			if ts.Name.Name == "T" {
				marked = IsImmutable(gd.Doc, ts.Doc, ts.Comment)
			}
		}
	}
	unmarked = IsImmutable(nil)
	if !marked {
		t.Error("type T carries the marker but IsImmutable = false")
	}
	if unmarked {
		t.Error("IsImmutable(nil) = true, want false")
	}
}
