// Command erlint is the repo's own static-analysis suite: five analyzers
// that mechanically enforce invariants the codebase otherwise carries by
// convention — publish-immutability of snapshots and serving indexes
// (immutable), context-threaded cancelable concurrency (ctxflow), %w
// wrapping and errors.Is sentinel matching (errwrap), fsync-before-ack and
// the faultfs seam (syncack), and Registry-owned ersolve_-namespaced
// metrics (metricreg).
//
// It runs two ways:
//
//	erlint ./...                         # standalone, from the module root
//	go vet -vettool=$(which erlint) ./... # as a vet tool
//
// Diagnostics are suppressed with a justified directive:
//
//	// erlint:ignore <reason>
//
// on the flagged line or the line above; a reasonless ignore is itself a
// finding. Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"fmt"
	"os"
	"strings"
)

// version is the fingerprint go vet hashes into its build cache key; bump
// it when analyzer behavior changes so cached clean results are
// invalidated.
const version = "v1.0.0"

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			// go vet's tool-identity handshake.
			fmt.Printf("erlint version %s\n", version)
			return
		case a == "-flags":
			// go vet asks which flags the tool accepts; erlint needs none.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}
