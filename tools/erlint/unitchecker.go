package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/tools/erlint/internal/analysis"
	"repro/tools/erlint/internal/checkers"
	"repro/tools/erlint/internal/driver"
)

// vetConfig is the per-package JSON file cmd/go hands a -vettool, one
// invocation per package in the dependency graph.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	GoVersion                 string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by a vet.cfg file. For
// dependency packages (VetxOnly) it only records the facts file go vet
// expects; erlint's analyzers are package-local, so that file is always
// empty.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "erlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOnly {
		return writeVetx(&cfg, 0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, 0)
			}
			fmt.Fprintln(os.Stderr, "erlint:", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports from the compiler's export data, as recorded in the
	// config's vendor/ImportMap tables; this keeps vettool mode coherent
	// with exactly what the build graph compiled.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	// Test-variant packages carry IDs like "p [p.test]"; analyzers match on
	// the import path proper.
	pkgPath, _, _ := strings.Cut(cfg.ImportPath, " ")
	pkg, err := tcfg.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, 0)
		}
		fmt.Fprintln(os.Stderr, "erlint:", err)
		return 2
	}

	findings := driver.AnalyzeFiles(fset, files, func(a *analysis.Analyzer, report func(analysis.Diagnostic)) error {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    report,
		}
		_, err := a.Run(pass)
		return err
	}, checkers.All())
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	exit := 0
	if len(findings) > 0 {
		exit = 2
	}
	return writeVetx(&cfg, exit)
}

// writeVetx records the (empty) facts output go vet requires before it
// will treat the invocation as complete, then returns exit.
func writeVetx(cfg *vetConfig, exit int) int {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("erlint"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "erlint:", err)
			return 2
		}
	}
	return exit
}
