// Blocking: compare candidate-pair generation schemes.
//
// The paper blocks pages by exact person name and notes that "in general,
// one needs to consider the applicable blocking schemes more carefully."
// This example builds a mixed record set where names appear in several
// written variants ("John Smith", "Smith, John", "J. Smith") and measures
// each scheme's pair completeness (recall of true pairs) against its
// reduction ratio (how much of the quadratic comparison space it prunes).
//
// Run with:
//
//	go run ./examples/blocking
package main

import (
	"fmt"

	"repro/internal/blocking"
)

func main() {
	// Twelve records about four real persons, with name-variant noise.
	// labels[i] is the ground-truth person of record i.
	records := []blocking.Record{
		{ID: 0, Keys: []string{"John Smith"}},
		{ID: 1, Keys: []string{"Smith, John"}},
		{ID: 2, Keys: []string{"J. Smith"}},
		{ID: 3, Keys: []string{"Mary Cohen"}},
		{ID: 4, Keys: []string{"Mary R. Cohen"}},
		{ID: 5, Keys: []string{"M. Cohen"}},
		{ID: 6, Keys: []string{"Andrew McCallum"}},
		{ID: 7, Keys: []string{"A. McCallum"}},
		{ID: 8, Keys: []string{"Andrew MacCallum"}}, // misspelled variant
		{ID: 9, Keys: []string{"Fernando Pereira"}},
		{ID: 10, Keys: []string{"F. Pereira", "Fernando C. Pereira"}},
		{ID: 11, Keys: []string{"Pereira, Fernando"}},
	}
	labels := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}

	schemes := []struct {
		name   string
		scheme blocking.Scheme
	}{
		{"exact-key (the paper's)", blocking.ExactKey{}},
		{"token blocking", blocking.TokenBlocking{}},
		{"sorted neighborhood w=3", blocking.SortedNeighborhood{Window: 3}},
		{"canopy (0.3 / 0.8)", blocking.Canopy{Loose: 0.3, Tight: 0.8}},
	}

	fmt.Println("scheme                      pairs  completeness  reduction")
	for _, s := range schemes {
		pairs := s.scheme.Candidates(records)
		st := blocking.Evaluate(pairs, labels)
		fmt.Printf("%-26s %6d        %.3f      %.3f\n",
			s.name, st.Candidates, st.PairCompleteness, st.ReductionRatio)
	}

	fmt.Println("\nExact-key blocking misses every name-variant pair; token blocking")
	fmt.Println("recovers pairs sharing a surname token; canopy clustering with a")
	fmt.Println("cheap Jaccard similarity trades a little reduction for the variant")
	fmt.Println("pairs that matter. The similarity stage then prunes false")
	fmt.Println("candidates, so blocking recall is what counts.")
}
