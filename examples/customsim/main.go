// Customsim: extend the framework with your own similarity function.
//
// The ten built-in functions (Table I of the paper) do not use page
// locations; this example defines an eleventh function comparing location
// mentions, then drives the framework's lower-level API directly: prepare a
// block, compute the similarity matrix, draw a training sample, fit both a
// threshold and k-means accuracy regions, and compare the two decision
// criteria on the final clustering — the paper's Section IV-A experiment,
// on a brand-new function.
//
// Run with:
//
//	go run ./examples/customsim
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/eval"
	"repro/internal/regions"
	"repro/internal/simfn"
	"repro/internal/stats"
	"repro/internal/textsim"
)

func main() {
	// A custom similarity function: overlap of location mentions,
	// saturating at two shared locations — same shape as F4-F6.
	locationSim := simfn.Func{
		ID:      "F11",
		Feature: "Location entities on the page",
		Measure: "Number of overlapping locations",
		Compare: func(a, b *simfn.Doc) float64 {
			n := textsim.SetOverlapCount(a.Features.Locations, b.Features.Locations)
			return textsim.NormalizedOverlap(n, 2)
		},
	}

	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "garcia", NumDocs: 60, NumPersonas: 5,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Lower-level pipeline, step by step.
	block := simfn.PrepareBlock(col, nil)
	matrix := simfn.ComputeMatrix(block, locationSim)

	rng := stats.NewRNG(1)
	train, err := core.NewTraining(block, 0.10, rng)
	if err != nil {
		log.Fatal(err)
	}
	values := train.Values(matrix)

	// Criterion 1: a single trained threshold.
	threshold := core.LearnThreshold(values, train.Links)
	fmt.Printf("custom function %s (%s)\n", locationSim.ID, locationSim.Feature)
	fmt.Printf("trained threshold: %.3f\n\n", threshold)

	// Criterion 2: k-means regions with per-region link accuracy.
	km, err := regions.FitKMeans1D(values, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	est, err := regions.EstimateAccuracy(km, values, train.Links)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-region link accuracy (the Figure 1 analysis for F11):")
	lo := 0.0
	for r, hi := range est.Part.Boundaries() {
		fmt.Printf("  region %d [%.3f, %.3f): accuracy %.3f (n=%d)\n",
			r, lo, hi, est.Accuracy[r], est.Support[r])
		lo = hi
	}

	// Build both decision graphs and cluster by transitive closure.
	truth := col.GroundTruth()
	for _, crit := range []struct {
		label  string
		decide func(v float64) bool
	}{
		{"threshold", func(v float64) bool { return v >= threshold }},
		{"k-means regions", est.Decide},
	} {
		g := ergraph.NewGraph(len(block.Docs))
		for i := 0; i < len(block.Docs); i++ {
			for j := i + 1; j < len(block.Docs); j++ {
				if crit.decide(matrix.At(i, j)) {
					if err := g.AddEdge(i, j); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		labels := g.ConnectedComponents()
		score, err := eval.Evaluate(labels, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-16s: %d entities, Fp=%.4f F=%.4f Rand=%.4f",
			crit.label, ergraph.NumClusters(labels), score.Fp, score.F, score.Rand)
	}
	fmt.Println()
	fmt.Println("\nLocation overlap alone is a weak identity signal (many people share")
	fmt.Println("a city), which is exactly what the region accuracies above quantify —")
	fmt.Println("in the full framework this function would contribute through the")
	fmt.Println("accuracy-weighted combination rather than stand alone.")
}
