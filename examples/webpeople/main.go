// Webpeople: the WWW'05-style experiment — compare every individual
// similarity function against the combined framework on a whole dataset of
// ambiguous names, demonstrating the paper's headline claim that combining
// accuracy-estimated decision graphs beats any single function.
//
// Run with:
//
//	go run ./examples/webpeople
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/simfn"
	"repro/internal/stats"
)

func main() {
	// The synthetic stand-in for the WWW'05 dataset: 12 ambiguous names,
	// 100 pages each, 2-61 real persons per name.
	dataset, err := corpus.WWW05Profile().Generate(2010)
	if err != nil {
		log.Fatal(err)
	}
	resolver, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	perFunction := make(map[string][]eval.Result)
	var combined []eval.Result

	for i, col := range dataset.Collections {
		prep, err := resolver.Prepare(col)
		if err != nil {
			log.Fatal(err)
		}
		analysis, err := prep.Run(stats.SplitSeedN(2010, i))
		if err != nil {
			log.Fatal(err)
		}
		truth := col.GroundTruth()

		// Each function alone, with its trained threshold.
		for _, id := range simfn.SubsetI10 {
			res, err := analysis.SingleFunction(id, core.ThresholdCriterion)
			if err != nil {
				log.Fatal(err)
			}
			score, err := eval.Evaluate(res.Labels, truth)
			if err != nil {
				log.Fatal(err)
			}
			perFunction[id] = append(perFunction[id], score)
		}

		// The framework: best decision graph over all criteria.
		res, err := analysis.BestAnyCriterion()
		if err != nil {
			log.Fatal(err)
		}
		score, err := eval.Evaluate(res.Labels, truth)
		if err != nil {
			log.Fatal(err)
		}
		combined = append(combined, score)
		fmt.Printf("%-10s %3d persons  combined Fp=%.4f  (chose %s)\n",
			col.Name, col.NumPersonas, score.Fp, res.Source)
	}

	fmt.Println("\ndataset averages (Fp / F / Rand):")
	for _, id := range simfn.SubsetI10 {
		avg := eval.Aggregate(perFunction[id])
		fmt.Printf("  %-4s %.4f / %.4f / %.4f\n", id, avg.Fp, avg.F, avg.Rand)
	}
	avg := eval.Aggregate(combined)
	fmt.Printf("  %-4s %.4f / %.4f / %.4f   <-- combined framework\n",
		"ALL", avg.Fp, avg.F, avg.Rand)
}
