// Pipeline: resolve a multi-name dataset through the streaming pipeline
// with a pluggable blocking scheme.
//
// The classic path resolves each ingested collection as its own block (the
// paper's exact-name scheme). This example re-blocks the same documents
// with token blocking over the collection names, so the name variants
// "ann walker" and "walker, ann" land in one merged block, then runs the
// staged pipeline — Block → Prepare → Analyze → Combine → Cluster →
// Report — with a deadline attached, the way `ersolve serve` handles every
// request.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
)

func main() {
	// Two collections about the SAME person set, retrieved under variant
	// spellings of one name, plus an unrelated name.
	var cols []*corpus.Collection
	for i, name := range []string{"ann walker", "walker, ann", "bruno ferrari"} {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: name, NumDocs: 25, NumPersonas: 3,
			Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(40 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		cols = append(cols, col)
	}

	for _, scheme := range []string{"exact", "token"} {
		blocker, err := pipeline.ParseBlocker(scheme)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := pipeline.New(pipeline.Config{Blocker: blocker, Score: true})
		if err != nil {
			log.Fatal(err)
		}

		// Every run is cancelable: the deadline aborts mid-extraction or
		// mid-matrix if resolution overruns it.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		results, err := pl.Run(ctx, cols)
		cancel()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s blocking -> %d blocks\n", scheme, len(results))
		for _, res := range results {
			fmt.Printf("  %-28s %3d pages -> %d entities (%s)  Fp=%.3f\n",
				res.Block.Name, len(res.Block.Docs), res.Resolution.NumEntities(),
				res.Resolution.Source, res.Score.Fp)
		}
	}

	fmt.Println("\nExact blocking keeps the two spellings of the same name apart;")
	fmt.Println("token blocking shares the token \"walker\"/\"ann\" and merges them")
	fmt.Println("into one block, letting the similarity stage see the cross-variant")
	fmt.Println("pairs. The same Config drives ersolve, the experiment drivers and")
	fmt.Println("the /v1/resolve service.")
}
