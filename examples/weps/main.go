// Weps: the WePS-2-style clustering task — resolve the 10 ACL-style names
// of the synthetic WePS dataset and report the official WePS measures
// (B-Cubed precision/recall/F) alongside the paper's Fp-measure, comparing
// transitive closure against correlation clustering as the final step.
//
// Run with:
//
//	go run ./examples/weps
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/stats"
)

func main() {
	dataset, err := corpus.WePSProfile().Generate(2010)
	if err != nil {
		log.Fatal(err)
	}
	acl := dataset.Subset(corpus.WePSACLNames)

	closure, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ccOpts := core.DefaultOptions()
	ccOpts.Clustering = core.CorrelationClustering
	correlation, err := core.New(ccOpts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("name         entities  method                  Fp      B3-P    B3-R    B3-F")
	var fpClosure, fpCorrelation []eval.Result
	for i, col := range acl.Collections {
		truth := col.GroundTruth()
		for _, m := range []struct {
			label    string
			resolver *core.Resolver
			sink     *[]eval.Result
		}{
			{"transitive-closure", closure, &fpClosure},
			{"correlation-cluster", correlation, &fpCorrelation},
		} {
			prep, err := m.resolver.Prepare(col)
			if err != nil {
				log.Fatal(err)
			}
			analysis, err := prep.Run(stats.SplitSeedN(7, i))
			if err != nil {
				log.Fatal(err)
			}
			res, err := analysis.BestAnyCriterion()
			if err != nil {
				log.Fatal(err)
			}
			score, err := eval.Evaluate(res.Labels, truth)
			if err != nil {
				log.Fatal(err)
			}
			b3, err := eval.BCubed(res.Labels, truth)
			if err != nil {
				log.Fatal(err)
			}
			*m.sink = append(*m.sink, score)
			fmt.Printf("%-12s %5d     %-20s  %.4f  %.4f  %.4f  %.4f\n",
				col.Name, res.NumEntities(), m.label, score.Fp, b3.Precision, b3.Recall, b3.F)
		}
	}

	ac := eval.Aggregate(fpClosure)
	acc := eval.Aggregate(fpCorrelation)
	fmt.Printf("\naverage Fp: transitive closure %.4f, correlation clustering %.4f\n", ac.Fp, acc.Fp)
	fmt.Println("(the paper's implementation uses transitive closure; correlation")
	fmt.Println(" clustering is the alternative it reports experimenting with)")
}
