// Incremental: ingest a growing corpus with a store + job queue and
// re-resolve only the blocks whose membership changed.
//
// Documents arrive from a crawl in batches, appended to a store through
// the async job queue — the same components behind `ersolve serve`'s POST
// /v1/collections. After each batch, RunIncremental diffs the block
// membership against the previous run's snapshot and re-prepares only the
// dirty blocks; at the end the clusters are compared against one full
// resolution of the union, the equivalence the test harness pins for every
// blocking scheme × strategy × clustering method.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/store"
)

func main() {
	// Three person-name collections; "smith" and "cohen" are fully crawled
	// up front, "rivera" keeps growing.
	var full []*corpus.Collection
	for i, name := range []string{"smith", "cohen", "rivera"} {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: name, NumDocs: 30, NumPersonas: 3,
			Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(70 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		full = append(full, col)
	}

	docs := store.NewMemStore()
	jobs := store.NewQueue(8, 0)
	defer jobs.Shutdown(context.Background())

	// Batch 1: everything except rivera's last 10 pages. Batch 2: the rest.
	batches := [][]*corpus.Collection{
		{full[0], full[1], {Name: "rivera", Docs: full[2].Docs[:20], NumPersonas: 3}},
		{{Name: "rivera", Docs: full[2].Docs[20:], NumPersonas: 3}},
	}

	pl, err := pipeline.New(pipeline.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var snap *pipeline.Snapshot
	var last *pipeline.IncrementalResult
	for i, batch := range batches {
		// Enqueue the ingest and wait for the job, as the HTTP layer would.
		job, err := jobs.Enqueue("ingest", func(context.Context) (any, error) {
			return docs.Append(batch)
		})
		if err != nil {
			log.Fatal(err)
		}
		for {
			j, _ := jobs.Get(job.ID)
			if j.Status == store.JobDone {
				break
			}
			if j.Status == store.JobFailed {
				log.Fatalf("ingest failed: %s", j.Error)
			}
			time.Sleep(time.Millisecond)
		}

		cols, version := docs.Snapshot()
		inc, err := pl.RunIncremental(ctx, cols, snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d (store v%d): %d blocks, %d prepared, %d reused\n",
			i+1, version, inc.Stats.Blocks, inc.Stats.Prepared, inc.Stats.Reused)
		snap, last = inc.Snapshot, inc
	}

	// The equivalence the harness pins: the final incremental state equals
	// one full resolution of everything.
	cols, _ := docs.Snapshot()
	fullRun, err := pl.RunIncremental(ctx, cols, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range fullRun.Results {
		same := fmt.Sprint(last.Results[i].Resolution.Labels) == fmt.Sprint(res.Resolution.Labels)
		fmt.Printf("  %-8s %2d pages -> %2d entities, incremental == full: %v\n",
			res.Block.Name, len(res.Block.Docs), res.Resolution.NumEntities(), same)
	}
	fmt.Println("\nOnly \"rivera\" was re-prepared in batch 2; \"smith\" and \"cohen\"")
	fmt.Println("reused their batch-1 preparation and clustering. The same flow runs")
	fmt.Println("over HTTP: POST /v1/collections → GET /v1/jobs/{id} → POST")
	fmt.Println("/v1/resolve/incremental.")
}
