// Quickstart: resolve one ambiguous person name end to end.
//
// The example generates a small synthetic web collection for the name
// "cohen" (40 pages, 4 real persons), runs the full entity-resolution
// pipeline — similarity functions, trained decision criteria, best-graph
// combination, transitive closure — and prints the discovered entities with
// their quality against the ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
)

func main() {
	// 1. A document collection: all pages retrieved for one ambiguous
	//    name. Here we synthesize one; corpus.ReadJSON loads real data of
	//    the same shape.
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name:        "cohen",
		NumDocs:     40,
		NumPersonas: 4,
		Noise:       0.5,
		MissingInfo: 0.25,
		Spurious:    0.3,
		Template:    0.25,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A resolver with the paper's default setup: all ten similarity
	//    functions, 10% training sample, 10 accuracy regions, transitive
	//    closure.
	resolver, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Resolve: partition the pages so that two pages share a partition
	//    iff they are about the same real person.
	res, err := resolver.Resolve(col)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collection %q: %d pages, %d true persons\n",
		col.Name, len(col.Docs), col.NumPersonas)
	fmt.Printf("resolved %d entities using %s\n\n", res.NumEntities(), res.Source)

	// 4. Inspect the clusters.
	clusters := make(map[int][]int)
	for doc, label := range res.Labels {
		clusters[label] = append(clusters[label], doc)
	}
	for label := 0; label < res.NumEntities(); label++ {
		docs := clusters[label]
		if len(docs) > 6 {
			fmt.Printf("  entity %d: %d pages %v...\n", label, len(docs), docs[:6])
		} else {
			fmt.Printf("  entity %d: %d pages %v\n", label, len(docs), docs)
		}
	}

	// 5. Score against ground truth (available here because the data is
	//    synthetic; on real collections this needs manual labels).
	score, err := eval.Evaluate(res.Labels, col.GroundTruth())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquality: Fp=%.4f  F=%.4f  Rand=%.4f\n", score.Fp, score.F, score.Rand)
}
